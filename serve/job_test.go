package serve

import (
	"errors"
	"strings"
	"testing"

	"dsmnc"
)

func TestParseRequestValid(t *testing.T) {
	cases := []struct {
		in      string
		system  string // expected compiled system name
		ncBytes int
	}{
		{`{"bench":"FFT","system":"base"}`, "base", 0},
		{`{"bench":"Ocean","system":"nc"}`, "nc", 16 << 10},
		{`{"bench":"Radix","system":"vb","nc_bytes":32768}`, "vb", 32 << 10},
		{`{"bench":"LU","system":"vp","pc_frac":5}`, "vpp5", 16 << 10},
		{`{"bench":"Barnes","system":"nc","pc_bytes":524288}`, "ncp", 16 << 10},
		{`{"bench":"FFT","system":"vxp","pc_frac":5}`, "vxp5(t32)", 16 << 10},
		{`{"bench":"FFT","system":"vxp","pc_frac":5,"threshold":64}`, "vxp5(t64)", 16 << 10},
		{`{"bench":"FFT","system":"pc","pc_frac":7}`, "pc7", 0},
		{`{"bench":"FFT","system":"NCD","scale":"test","check":true}`, "NCD", 512 << 10},
		{`{"bench":"FFT","system":"origin","timeout_ms":5000}`, "origin", 0},
	}
	for _, c := range cases {
		req, err := ParseRequest([]byte(c.in))
		if err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		bench, sys, _, err := req.compile(dsmnc.DefaultOptions())
		if err != nil {
			t.Errorf("%s: compile: %v", c.in, err)
			continue
		}
		if bench == nil || bench.Name != req.Bench {
			t.Errorf("%s: compiled bench %v, want %s", c.in, bench, req.Bench)
		}
		if sys.Name != c.system {
			t.Errorf("%s: compiled system %q, want %q", c.in, sys.Name, c.system)
		}
		if sys.NCBytes != c.ncBytes {
			t.Errorf("%s: NCBytes %d, want %d", c.in, sys.NCBytes, c.ncBytes)
		}
	}
}

func TestParseRequestRejects(t *testing.T) {
	cases := []string{
		``,                                     // empty
		`{`,                                    // truncated
		`[]`,                                   // wrong shape
		`{"bench":"FFT","system":"base"}{}`,    // trailing object
		`{"bench":"FFT","system":"base"} true`, // trailing value
		`{"bench":"FFT"}`,                      // missing system
		`{"system":"base"}`,                    // missing bench
		`{"bench":"NoSuch","system":"base"}`,
		`{"bench":"FFT","system":"warp"}`,
		`{"bench":"FFT","system":"base","scale":"galactic"}`,
		`{"bench":"FFT","system":"base","bogus":1}`,         // unknown field
		`{"bench":"FFT","system":"base","nc_bytes":1024}`,   // base takes no NC
		`{"bench":"FFT","system":"nc","nc_bytes":-1}`,       // negative
		`{"bench":"FFT","system":"nc","nc_bytes":99999999}`, // over bound
		`{"bench":"FFT","system":"nc","pc_bytes":1,"pc_frac":5}`,
		`{"bench":"FFT","system":"nc","threshold":32}`, // threshold w/o page cache
		`{"bench":"FFT","system":"pc"}`,                // pc needs pc_frac
		`{"bench":"FFT","system":"vxp"}`,               // vxp needs pc_frac
		`{"bench":"FFT","system":"vxp","pc_frac":5,"pc_bytes":1024}`,
		`{"bench":"FFT","system":"base","timeout_ms":-5}`,
		`{"bench":"FFT","system":"nc","pc_frac":100}`, // over 1/64
	}
	for _, c := range cases {
		if _, err := ParseRequest([]byte(c)); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%q: err = %v, want ErrBadRequest", c, err)
		}
	}
	if _, err := ParseRequest([]byte(`{"bench":"` + strings.Repeat("x", MaxRequestBytes) + `"}`)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("oversized body: err = %v, want ErrBadRequest", err)
	}
}

func TestRequestFingerprintCanonical(t *testing.T) {
	a, err := ParseRequest([]byte(`{"bench":"FFT","system":"nc"}`))
	if err != nil {
		t.Fatal(err)
	}
	// Spelling out the defaults gives the same identity.
	b, err := ParseRequest([]byte(`{"bench":"FFT","system":"nc","nc_bytes":16384,"scale":"small"}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("defaulted and explicit requests fingerprint differently: %s vs %s",
			a.Fingerprint(), b.Fingerprint())
	}
	// Timeout is a runtime knob, not identity.
	c, err := ParseRequest([]byte(`{"bench":"FFT","system":"nc","timeout_ms":9999}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("timeout_ms changed the job identity")
	}
	// Different work, different identity.
	d, err := ParseRequest([]byte(`{"bench":"FFT","system":"nc","nc_bytes":32768}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("different nc_bytes share a fingerprint")
	}
}

// FuzzJobRequest is the decoder's robustness contract: any input bytes
// either parse into a request that re-validates and compiles cleanly,
// or fail with an ErrBadRequest-wrapped error — never a panic, never a
// bare error outside the sentinel family.
func FuzzJobRequest(f *testing.F) {
	seeds := []string{
		`{"bench":"FFT","system":"base"}`,
		`{"bench":"Ocean","system":"nc","nc_bytes":16384,"pc_frac":5}`,
		`{"bench":"Radix","system":"vxp","pc_frac":5,"threshold":64,"scale":"test"}`,
		`{"bench":"LU","system":"vb","pc_bytes":524288,"check":true,"timeout_ms":1000}`,
		`{"bench":"FFT","system":"pc","pc_frac":7}`,
		`{"bench":"","system":""}`,
		`{"bench":"FFT","system":"base","nc_bytes":-99}`,
		`{"nc_bytes":1e99}`,
		`[{"bench":"FFT"}]`,
		`{}`,
		`{"bench":"FFT","system":"base"}garbage`,
		"\x00\xff\xfe",
		`{"bench":"FFT","system":"nc","threshold":4294967295}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	base := dsmnc.DefaultOptions()
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("non-sentinel error %v (%[1]T)", err)
			}
			return
		}
		if err := req.validate(); err != nil {
			t.Fatalf("parsed request fails re-validation: %v", err)
		}
		if req.Fingerprint() == "" {
			t.Fatal("parsed request has an empty fingerprint")
		}
		if _, _, _, err := req.compile(base); err != nil {
			t.Fatalf("parsed request fails to compile: %v", err)
		}
	})
}
