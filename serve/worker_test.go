package serve

// Unit tests for the worker-side task pool: admission, the shed bound,
// epoch join/supersede/stale semantics, fingerprint verification,
// cancellation, drain, and the metrics surface — all by direct method
// call, no transport.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dsmnc"
	"dsmnc/telemetry"
)

// mustWorker builds a worker whose runFn is the given synthetic engine.
func mustWorker(t *testing.T, cfg WorkerConfig, run func(ctx context.Context, wt *workerTask) (dsmnc.Result, error)) *Worker {
	t.Helper()
	cfg.runFn = run
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// dispatchFor renders the wire dispatch of req(n) at the given epoch,
// computing the ID and fingerprint exactly as a coordinator would.
func dispatchFor(t *testing.T, w *Worker, n int, attempt int, epoch uint64) ([]byte, string) {
	t.Helper()
	r := req(n).normalized()
	_, _, opt, err := r.compile(w.cfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	id := jobID(r, opt)
	wr := WireRequest{ID: id, Attempt: attempt, Epoch: epoch, Fingerprint: opt.Fingerprint(), Request: r}
	body, err := wr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return body, id
}

// pollUntilTerminal polls the worker until the task settles.
func pollUntilTerminal(t *testing.T, w *Worker, id string, epoch uint64) WireResult {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := w.Poll(id, epoch)
		if code != 200 {
			t.Fatalf("Poll(%s) = %d: %s", id, code, body)
		}
		res, err := ParseWireResult(body)
		if err != nil {
			t.Fatalf("Poll(%s) answered garbage: %v", id, err)
		}
		if res.State.Terminal() {
			return res
		}
		if time.Now().After(deadline) {
			t.Fatalf("task %s never settled (state %s)", id, res.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWorkerLifecycle(t *testing.T) {
	w := mustWorker(t, WorkerConfig{Slots: 2}, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		return dsmnc.Result{System: wt.sys.Name, Bench: wt.bench.Name, Refs: 7}, nil
	})
	body, id := dispatchFor(t, w, 0, 1, 1)
	code, ans := w.Dispatch(body)
	if code != 202 {
		t.Fatalf("Dispatch = %d: %s", code, ans)
	}
	first, err := ParseWireResult(ans)
	if err != nil || first.ID != id || first.State.Terminal() {
		t.Fatalf("dispatch answer %+v / %v; want a live status for %s", first, err, id)
	}
	res := pollUntilTerminal(t, w, id, 1)
	if res.State != StateDone || res.Result == nil || res.Result.Refs != 7 {
		t.Fatalf("terminal poll %+v; want done with the engine's result", res)
	}
	// A duplicate dispatch joins the finished task and answers its
	// result immediately — the deterministic engine ran once.
	code, ans = w.Dispatch(body)
	if code != 200 {
		t.Fatalf("duplicate Dispatch = %d: %s", code, ans)
	}
	if again, err := ParseWireResult(ans); err != nil || again.State != StateDone {
		t.Fatalf("joined dispatch answered %+v / %v; want the done result", again, err)
	}
	if got := w.admitted.Load(); got != 1 {
		t.Fatalf("admitted %d tasks; the duplicate must join, not re-run", got)
	}
	if got := w.joined.Load(); got != 1 {
		t.Fatalf("joined = %d; want 1", got)
	}
}

func TestWorkerShedsAtCapacity(t *testing.T) {
	gate := make(chan struct{})
	w := mustWorker(t, WorkerConfig{Slots: 1, QueueDepth: 1}, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		select {
		case <-gate:
			return dsmnc.Result{Refs: 1}, nil
		case <-ctx.Done():
			return dsmnc.Result{}, ctx.Err()
		}
	})
	// Slot 1 runs, slot 2 queues, slot 3 sheds.
	for n := 0; n < 2; n++ {
		body, _ := dispatchFor(t, w, n, 1, 1)
		if code, ans := w.Dispatch(body); code != 202 {
			t.Fatalf("dispatch %d = %d: %s", n, code, ans)
		}
	}
	body, _ := dispatchFor(t, w, 2, 1, 1)
	code, ans := w.Dispatch(body)
	if code != 429 {
		t.Fatalf("dispatch past the bound = %d: %s; want 429", code, ans)
	}
	if w.shed.Load() != 1 {
		t.Fatalf("shed = %d; want 1", w.shed.Load())
	}
	// Shed is not a state: once the pool drains, the same dispatch is
	// admitted.
	close(gate)
	var id string
	deadline := time.Now().Add(10 * time.Second)
	for {
		var c int
		var a []byte
		c, a = w.Dispatch(body)
		if c == 202 {
			wr, err := ParseWireResult(a)
			if err != nil {
				t.Fatal(err)
			}
			id = wr.ID
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatch still refused (%d: %s) after the pool drained", c, a)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if res := pollUntilTerminal(t, w, id, 1); res.State != StateDone {
		t.Fatalf("post-shed task settled %s", res.State)
	}
}

func TestWorkerEpochSemantics(t *testing.T) {
	gate := make(chan struct{})
	w := mustWorker(t, WorkerConfig{Slots: 1}, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		select {
		case <-gate:
			return dsmnc.Result{Refs: 1}, nil
		case <-ctx.Done():
			return dsmnc.Result{}, ctx.Err()
		}
	})
	body3, id := dispatchFor(t, w, 0, 2, 3)
	if code, ans := w.Dispatch(body3); code != 202 {
		t.Fatalf("Dispatch(epoch 3) = %d: %s", code, ans)
	}
	// A stale-epoch dispatch, poll, and cancel are all refused.
	body2, _ := dispatchFor(t, w, 0, 1, 2)
	if code, _ := w.Dispatch(body2); code != 409 {
		t.Fatalf("stale dispatch = %d; want 409", code)
	}
	if code, _ := w.Poll(id, 2); code != 409 {
		t.Fatalf("stale poll = %d; want 409", code)
	}
	if code, _ := w.CancelTask(id, 2); code != 409 {
		t.Fatalf("stale cancel = %d; want 409", code)
	}
	if w.stale.Load() != 3 {
		t.Fatalf("stale = %d; want 3", w.stale.Load())
	}
	// A newer-epoch dispatch joins and bumps the held epoch; the old
	// epoch's polls go stale from that moment.
	body5, _ := dispatchFor(t, w, 0, 3, 5)
	if code, ans := w.Dispatch(body5); code != 200 {
		t.Fatalf("newer dispatch = %d: %s", code, ans)
	}
	if code, _ := w.Poll(id, 3); code != 409 {
		t.Fatalf("poll at the superseded epoch = %d; want 409", code)
	}
	close(gate)
	if res := pollUntilTerminal(t, w, id, 5); res.State != StateDone || res.Epoch != 5 {
		t.Fatalf("terminal %+v; want done at epoch 5", res)
	}
	// Unknown tasks are 404 — what a coordinator sees after a worker
	// restart, and treats as a lost lease.
	if code, _ := w.Poll("ffffffffffffffff", 1); code != 404 {
		t.Fatalf("unknown poll = %d; want 404", code)
	}
	if code, _ := w.CancelTask("ffffffffffffffff", 1); code != 404 {
		t.Fatalf("unknown cancel = %d; want 404", code)
	}
}

func TestWorkerFingerprintMismatch(t *testing.T) {
	w := mustWorker(t, WorkerConfig{Slots: 1}, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		return dsmnc.Result{}, nil
	})
	r := req(0).normalized()
	_, _, opt, err := r.compile(w.cfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	wr := WireRequest{ID: jobID(r, opt), Attempt: 1, Epoch: 1, Fingerprint: "00000000deadbeef", Request: r}
	body, err := wr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	code, ans := w.Dispatch(body)
	if code != 412 {
		t.Fatalf("mismatched dispatch = %d: %s; want 412", code, ans)
	}
	if !strings.Contains(string(ans), "fingerprint") {
		t.Fatalf("412 body %q does not explain the mismatch", ans)
	}
	if w.mismatch.Load() != 1 || w.admitted.Load() != 0 {
		t.Fatalf("mismatch=%d admitted=%d; the dispatch must be refused untried", w.mismatch.Load(), w.admitted.Load())
	}
}

func TestWorkerCancelAndDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	var started atomic.Int64
	w := mustWorker(t, WorkerConfig{Slots: 2}, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		started.Add(1)
		<-ctx.Done()
		return dsmnc.Result{}, ctx.Err()
	})
	body, id := dispatchFor(t, w, 0, 1, 1)
	if code, _ := w.Dispatch(body); code != 202 {
		t.Fatal("dispatch refused")
	}
	if code, _ := w.CancelTask(id, 1); code != 200 {
		t.Fatal("cancel refused")
	}
	if res := pollUntilTerminal(t, w, id, 1); res.State != StateCanceled {
		t.Fatalf("canceled task settled %s", res.State)
	}
	// Drain: a running task is canceled once the drain context ends,
	// intake answers 503, polls keep answering.
	body2, id2 := dispatchFor(t, w, 1, 1, 1)
	if code, _ := w.Dispatch(body2); code != 202 {
		t.Fatal("dispatch refused")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := w.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with a live task = %v; want the deadline forcing cancellation", err)
	}
	body3, _ := dispatchFor(t, w, 2, 1, 1)
	if code, _ := w.Dispatch(body3); code != 503 {
		t.Fatalf("post-drain dispatch = %d; want 503", code)
	}
	if res := pollUntilTerminal(t, w, id2, 1); res.State != StateCanceled {
		t.Fatalf("drained task settled %s; want canceled", res.State)
	}
	if rc, _ := w.Ready(); rc != 503 {
		t.Fatalf("Ready while draining = %d; want 503", rc)
	}
	checkNoGoroutineLeak(t, before)
}

func TestWorkerEvictsTerminalTasks(t *testing.T) {
	w := mustWorker(t, WorkerConfig{Slots: 1, KeepResults: 2}, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		return dsmnc.Result{Refs: 1}, nil
	})
	var first string
	for n := 0; n < 3; n++ {
		body, id := dispatchFor(t, w, n, 1, 1)
		if n == 0 {
			first = id
		}
		if code, ans := w.Dispatch(body); code != 202 {
			t.Fatalf("dispatch %d = %d: %s", n, code, ans)
		}
		pollUntilTerminal(t, w, id, 1)
	}
	if code, _ := w.Poll(first, 1); code != 404 {
		t.Fatalf("evicted task polls %d; want 404", code)
	}
}

func TestWorkerReadyAndMetrics(t *testing.T) {
	gate := make(chan struct{})
	w := mustWorker(t, WorkerConfig{Slots: 2, QueueDepth: 2}, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		select {
		case <-gate:
			return dsmnc.Result{Refs: 1}, nil
		case <-ctx.Done():
			return dsmnc.Result{}, ctx.Err()
		}
	})
	ids := make([]string, 3)
	for n := 0; n < 3; n++ {
		body, id := dispatchFor(t, w, n, 1, 1)
		ids[n] = id
		if code, _ := w.Dispatch(body); code != 202 {
			t.Fatal("dispatch refused")
		}
	}
	// Wait for both slots to fill, leaving one task queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := w.Ready()
		if code != 200 {
			t.Fatalf("Ready = %d: %s", code, body)
		}
		rd, err := ParseWireReady(body)
		if err != nil {
			t.Fatal(err)
		}
		if rd.Slots != 2 {
			t.Fatalf("readiness reports %d slots; want 2", rd.Slots)
		}
		if rd.Busy == 2 && rd.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capacity account never converged: %+v", rd)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(gate)
	for _, id := range ids {
		pollUntilTerminal(t, w, id, 1)
	}
	reg := telemetry.NewRegistry()
	if err := w.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"dsmnc_serve_worker_slots 2",
		"dsmnc_serve_worker_tasks_total 3",
		"dsmnc_serve_worker_done_total 3",
		"dsmnc_serve_worker_busy 0",
		"dsmnc_serve_worker_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text lacks %q:\n%s", want, text)
		}
	}
}

func TestWorkerRejectsGarbageAndUncompilable(t *testing.T) {
	w := mustWorker(t, WorkerConfig{Slots: 1}, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		return dsmnc.Result{}, nil
	})
	if code, ans := w.Dispatch([]byte("\x00\xff")); code != 400 {
		t.Fatalf("garbage dispatch = %d: %s; want 400", code, ans)
	}
	// Valid wire shape, but a request this worker cannot compile (the
	// strict parser catches unknown benches before compile; an options
	// clash surfaces at compile). Use a shard count the base options
	// reject to reach the compile path.
	r := Request{Bench: "FFT", System: "nc", Scale: "test", Shards: 999}
	wr := WireRequest{ID: "0123456789abcdef", Attempt: 1, Epoch: 1, Fingerprint: "0123456789abcdef", Request: r}
	body, err := wr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	code, ans := w.Dispatch(body)
	if code != 400 && code != 412 {
		t.Fatalf("uncompilable dispatch = %d: %s; want a refusal", code, ans)
	}
	if w.admitted.Load() != 0 {
		t.Fatal("a refused dispatch must not admit a task")
	}
}

func TestWorkerFailedTask(t *testing.T) {
	w := mustWorker(t, WorkerConfig{Slots: 1}, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		return dsmnc.Result{}, fmt.Errorf("engine exploded on %s", wt.id)
	})
	body, id := dispatchFor(t, w, 0, 1, 1)
	if code, _ := w.Dispatch(body); code != 202 {
		t.Fatal("dispatch refused")
	}
	res := pollUntilTerminal(t, w, id, 1)
	if res.State != StateFailed || !strings.Contains(res.Error, "engine exploded") {
		t.Fatalf("failed task polls %+v; want the engine error", res)
	}
	if w.failed.Load() != 1 {
		t.Fatalf("failed = %d; want 1", w.failed.Load())
	}
}
