package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsmnc"
	"dsmnc/stats"
	"dsmnc/telemetry"
	"dsmnc/workload"
)

// req returns a small valid request; vary n for distinct job IDs.
func req(n int) Request {
	return Request{Bench: "FFT", System: "nc", NCBytes: (n + 1) << 10, Scale: "test"}
}

// fakeRunner replaces the simulation with synthetic work so scheduler
// mechanics can be tested at full speed. Each invocation is counted per
// job ID; the optional gate blocks completion until released (or the
// job's context ends, which surfaces like an engine cancellation).
type fakeRunner struct {
	mu    sync.Mutex
	runs  map[string]int
	gate  chan struct{}
	delay time.Duration
}

func newFakeRunner(gate chan struct{}, delay time.Duration) *fakeRunner {
	return &fakeRunner{runs: map[string]int{}, gate: gate, delay: delay}
}

func (f *fakeRunner) run(ctx context.Context, j *job) (dsmnc.Result, error) {
	f.mu.Lock()
	f.runs[j.id]++
	f.mu.Unlock()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return dsmnc.Result{}, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return dsmnc.Result{}, err
	}
	return dsmnc.Result{System: j.sys.Name, Bench: j.bench.Name, Refs: 1}, nil
}

func (f *fakeRunner) totalRuns() (total int, maxPerJob int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.runs {
		total += n
		if n > maxPerJob {
			maxPerJob = n
		}
	}
	return total, maxPerJob
}

// checkNoGoroutineLeak waits for the goroutine count to return to its
// pre-scheduler level (with a grace period for runtime stragglers).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before the scheduler, %d after Drain", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeSoak is the serving concurrency soak (run under -race by
// make serve-smoke): 64 concurrent submitters hammer a 4-worker pool
// behind a 64-deep queue. Every submission is either accepted and runs
// exactly once to a terminal state, or is shed with ErrBusy — no lost
// jobs, no duplicated work, a queue that never exceeds its bound — and
// Drain returns with every worker goroutine gone.
func TestServeSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := New(Config{Workers: 4, QueueDepth: 64, KeepResults: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	fr := newFakeRunner(nil, 200*time.Microsecond)
	s.runFn = fr.run

	const submitters = 64
	const perSubmitter = 32
	var accepted, shed atomic.Int64
	var acceptedIDs sync.Map // id -> struct{}
	var maxDepth atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				st, err := s.Submit(req(w*perSubmitter + i))
				if depth, capacity := s.QueueDepth(); depth > capacity {
					t.Errorf("queue depth %d exceeded its %d bound", depth, capacity)
				} else if int64(depth) > maxDepth.Load() {
					maxDepth.Store(int64(depth))
				}
				switch {
				case err == nil:
					accepted.Add(1)
					acceptedIDs.Store(st.ID, struct{}{})
				case errors.Is(err, ErrBusy):
					shed.Add(1)
				default:
					t.Errorf("submit: unexpected error %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	if got := accepted.Load() + shed.Load(); got != submitters*perSubmitter {
		t.Errorf("accounting hole: %d accepted + %d shed != %d submissions",
			accepted.Load(), shed.Load(), submitters*perSubmitter)
	}
	if accepted.Load() == 0 || shed.Load() == 0 {
		t.Errorf("soak exercised nothing: %d accepted, %d shed", accepted.Load(), shed.Load())
	}
	// Every accepted job ran exactly once and reached done.
	total, maxPer := fr.totalRuns()
	if int64(total) != accepted.Load() {
		t.Errorf("%d accepted jobs but %d engine runs (lost or duplicated work)", accepted.Load(), total)
	}
	if maxPer > 1 {
		t.Errorf("a job ran %d times", maxPer)
	}
	acceptedIDs.Range(func(k, _ any) bool {
		st, err := s.Status(k.(string))
		if err != nil {
			t.Errorf("accepted job %v lost: %v", k, err)
			return true
		}
		if st.State != StateDone {
			t.Errorf("job %v finished as %s, want done", k, st.State)
		}
		return true
	})
	if got := s.completed.Load(); got != accepted.Load() {
		t.Errorf("completed counter %d, want %d", got, accepted.Load())
	}
	if got := s.shed.Load(); got != shed.Load() {
		t.Errorf("shed counter %d, want %d", got, shed.Load())
	}
	checkNoGoroutineLeak(t, before)
}

func TestSubmitValidates(t *testing.T) {
	s := mustScheduler(t, Config{Workers: 1})
	defer s.Drain(context.Background())
	if _, err := s.Submit(Request{Bench: "NoSuch", System: "base"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown bench: err = %v, want ErrBadRequest", err)
	}
	if _, err := s.Submit(Request{Bench: "FFT", System: "base", NCBytes: 1024}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("base with nc_bytes: err = %v, want ErrBadRequest", err)
	}
}

func mustScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsSingleRunInstruments(t *testing.T) {
	opt := dsmnc.DefaultOptions()
	opt.Sampler = telemetry.NewSampler(100, 8)
	if _, err := New(Config{Options: opt}); !errors.Is(err, dsmnc.ErrConfig) {
		t.Errorf("sampler: err = %v, want ErrConfig", err)
	}
}

func TestIdempotentSubmit(t *testing.T) {
	s := mustScheduler(t, Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	fr := newFakeRunner(gate, 0)
	s.runFn = fr.run

	st1, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Submit(req(0))
	if err != nil {
		t.Fatalf("idempotent resubmit: %v", err)
	}
	if st1.ID != st2.ID {
		t.Fatalf("same request got two IDs: %s vs %s", st1.ID, st2.ID)
	}
	if got := s.deduped.Load(); got != 1 {
		t.Errorf("deduped counter %d, want 1", got)
	}
	close(gate)
	if _, err := s.Wait(context.Background(), st1.ID); err != nil {
		t.Fatal(err)
	}
	// Resubmitting a finished job returns its terminal status, still
	// without re-running.
	st3, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != StateDone {
		t.Errorf("resubmit of a done job: state %s, want done", st3.State)
	}
	if total, _ := fr.totalRuns(); total != 1 {
		t.Errorf("job ran %d times, want 1", total)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressure is the bounded-queue acceptance check: with one
// gated worker and a 128-deep queue, 129 jobs are admitted (1 running +
// 128 queued — comfortably over the 100-job bar) and every further
// submission sheds with ErrBusy instead of growing memory.
func TestBackpressure(t *testing.T) {
	s := mustScheduler(t, Config{Workers: 1, QueueDepth: 128, KeepResults: 512})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	fr := newFakeRunner(gate, 0)
	s.runFn = func(ctx context.Context, j *job) (dsmnc.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		return fr.run(ctx, j)
	}

	first, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds job 0; the queue is all ours
	var ids []string
	for n := 1; n <= 128; n++ {
		st, err := s.Submit(req(n))
		if err != nil {
			t.Fatalf("submission %d (queue should hold 128): %v", n, err)
		}
		ids = append(ids, st.ID)
	}
	if depth, capacity := s.QueueDepth(); depth != 128 || capacity != 128 {
		t.Fatalf("queue depth %d/%d, want 128/128", depth, capacity)
	}
	for n := 129; n < 140; n++ {
		if _, err := s.Submit(req(n)); !errors.Is(err, ErrBusy) {
			t.Fatalf("submission %d over the bound: err = %v, want ErrBusy", n, err)
		}
	}
	if got := s.shed.Load(); got != 11 {
		t.Errorf("shed counter %d, want 11", got)
	}
	close(gate)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range append(ids, first.ID) {
		st, err := s.Status(id)
		if err != nil || st.State != StateDone {
			t.Fatalf("queued job %s: state %v err %v, want done", id, st.State, err)
		}
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s := mustScheduler(t, Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	fr := newFakeRunner(gate, 0)
	s.runFn = func(ctx context.Context, j *job) (dsmnc.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		return fr.run(ctx, j)
	}
	run, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(req(1))
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Errorf("canceled queued job state %s, want canceled", st.State)
	}
	if _, err := s.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Errorf("canceled running job state %s, want canceled", final.State)
	}
	if final.Error == "" {
		t.Error("canceled job carries no error string")
	}
	if got := s.canceled.Load(); got != 2 {
		t.Errorf("canceled counter %d, want 2", got)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestJobDeadline runs a real simulation with a 1ms deadline: the
// engine must notice mid-run and fail the job with DeadlineExceeded.
func TestJobDeadline(t *testing.T) {
	s := mustScheduler(t, Config{Workers: 1})
	st, err := s.Submit(Request{Bench: "Ocean", System: "base", Scale: "small", TimeoutMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed {
		t.Fatalf("deadline job state %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, context.DeadlineExceeded.Error()) {
		t.Errorf("deadline job error %q, want deadline exceeded", final.Error)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDrainRejectsAndForcedDrainCancels(t *testing.T) {
	before := runtime.NumGoroutine()
	s := mustScheduler(t, Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{}) // never closed: jobs finish only by cancellation
	fr := newFakeRunner(gate, 0)
	s.runFn = fr.run
	a, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(req(1))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
	if _, err := s.Submit(req(2)); !errors.Is(err, ErrBusy) || !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining: err = %v, want ErrDraining (wrapping ErrBusy)", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCanceled {
			t.Errorf("job %s after forced drain: state %s, want canceled", id, st.State)
		}
	}
	checkNoGoroutineLeak(t, before)
}

func TestWatchStreamsTransitions(t *testing.T) {
	s := mustScheduler(t, Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	fr := newFakeRunner(gate, 0)
	s.runFn = fr.run
	st, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	var states []State
	for u := range ch {
		states = append(states, u.State)
	}
	if len(states) == 0 || states[len(states)-1] != StateDone {
		t.Fatalf("watched states %v, want a stream ending in done", states)
	}
	if _, err := s.Watch("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("watch unknown: err = %v, want ErrUnknownJob", err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestResultCacheEviction(t *testing.T) {
	s := mustScheduler(t, Config{Workers: 1, QueueDepth: 8, KeepResults: 2})
	fr := newFakeRunner(nil, 0)
	s.runFn = fr.run
	var ids []string
	for n := 0; n < 4; n++ {
		st, err := s.Submit(req(n))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), st.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if _, err := s.Status(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("oldest job should be evicted: err = %v, want ErrUnknownJob", err)
	}
	if _, err := s.Status(ids[3]); err != nil {
		t.Errorf("newest job evicted too early: %v", err)
	}
	// An evicted ID is re-runnable: idempotency is bounded by the
	// cache, not forever.
	if _, err := s.Submit(req(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if total, _ := fr.totalRuns(); total != 5 {
		t.Errorf("engine ran %d times, want 5 (4 originals + 1 evicted rerun)", total)
	}
}

func TestSchedulerMetrics(t *testing.T) {
	var p dsmnc.Progress
	s := mustScheduler(t, Config{Workers: 2, QueueDepth: 8, Progress: &p})
	fr := newFakeRunner(nil, 0)
	s.runFn = fr.run
	reg := telemetry.NewRegistry()
	if err := s.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterMetricsLabeled(reg, "serve"); err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dsmnc_serve_submitted_total 1",
		"dsmnc_serve_done_total 1",
		"dsmnc_serve_shed_total 0",
		"dsmnc_serve_queue_depth 0",
		"dsmnc_serve_queue_capacity 8",
		"dsmnc_serve_workers 2",
		"dsmnc_serve_run_seconds_count 1",
		"dsmnc_serve_queue_wait_seconds_count 1",
		`dsmnc_cells_done{job="serve"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

func TestStatusResultUnknownJob(t *testing.T) {
	s := mustScheduler(t, Config{Workers: 1})
	defer s.Drain(context.Background())
	if _, err := s.Status("beef"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Status: err = %v, want ErrUnknownJob", err)
	}
	if _, _, err := s.Result("beef"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Result: err = %v, want ErrUnknownJob", err)
	}
	if _, err := s.Wait(context.Background(), "beef"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Wait: err = %v, want ErrUnknownJob", err)
	}
	if _, err := s.Cancel("beef"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel: err = %v, want ErrUnknownJob", err)
	}
}

// TestServedRunMatchesDirectRun is the loopback half of the
// determinism contract: one real cell through the scheduler equals a
// direct dsmnc.Run of the same options, field for field.
func TestServedRunMatchesDirectRun(t *testing.T) {
	s := mustScheduler(t, Config{Workers: 2})
	st, err := s.Submit(Request{Bench: "FFT", System: "vb", Scale: "small"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job state %s (%s), want done", final.State, final.Error)
	}
	served, _, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	opt := dsmnc.DefaultOptions()
	opt.Scale = workload.ScaleSmall
	direct, err := dsmnc.Run(workload.ByName("FFT", workload.ScaleSmall), dsmnc.VB(16<<10), opt)
	if err != nil {
		t.Fatal(err)
	}
	if served.Refs != direct.Refs {
		t.Errorf("served Refs %d != direct %d", served.Refs, direct.Refs)
	}
	for _, d := range stats.DiffCounters(served.Counters, direct.Counters) {
		t.Error("served vs direct: " + d.String())
	}
	if fmt.Sprintf("%+v", served.Model) != fmt.Sprintf("%+v", direct.Model) {
		t.Error("served model differs from a direct Run")
	}
}
