package serve

// RemoteExecutor implements the Executor interface over the fleet wire
// protocol: one instance is one worker node, one fault domain. The
// transport itself is injected as a WireClient — net/http stays
// confined to cmd/ (AST-enforced), and tests drive the executor against
// an in-process worker with zero sockets.
//
// Failure detection is poll-driven: the executor dispatches the task,
// then polls the worker every lease.heartbeatEvery() and renews the
// coordinator's lease only when a poll answers. A partitioned or dead
// worker stops answering, the lease expires at the TTL, the monitor
// cancels the attempt, and Execute returns ErrLeaseLost — while a slow
// but reachable worker keeps answering polls and keeps its lease
// (slow-is-not-dead; the fleet torture suite proves the distinction
// with a heartbeat-blackholing proxy). Every infrastructure failure —
// refused dispatch, shed (429), draining (503), restart (404), stale
// epoch, unreachable node — surfaces as ErrLeaseLost, so the
// scheduler's retry budget, quarantine breaker and ledger apply to
// remote nodes unchanged. Only a config mismatch (412), a request the
// worker cannot compile (400), or a task the worker reports failed is
// permanent.

import (
	"dsmnc"

	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// WireClient is the transport seam a RemoteExecutor drives: one
// round trip of the wire protocol to one worker node. cmd/dsmserved
// implements it over net/http; tests implement it in-process. Do
// returns the wire status code and body for any answered exchange
// (whatever the code), and an error only when the exchange itself
// failed — connection refused, partition, timeout.
type WireClient interface {
	Do(ctx context.Context, method, path string, body []byte) (status int, respBody []byte, err error)
}

// remotePollFloor is the poll cadence when leases are disabled (no TTL
// to derive a heartbeat interval from).
const remotePollFloor = 500 * time.Millisecond

// remoteCallTimeout bounds one wire round trip when leases are
// disabled; with leases on, the TTL bounds it.
const remoteCallTimeout = 30 * time.Second

// remoteCancelTimeout bounds the best-effort cancel sent to a worker
// when the coordinator abandons an attempt.
const remoteCancelTimeout = 2 * time.Second

// RemoteExecutor runs tasks on one worker node over the wire protocol.
// Create one per node with NewRemoteExecutor; the scheduler treats each
// as an independent fault domain.
type RemoteExecutor struct {
	name   string
	client WireClient
	slots  atomic.Int64 // last probed slot capacity; 0 until probed
}

// NewRemoteExecutor binds one worker node as an executor fault domain.
// The name identifies the node in statuses, readiness and logs (the
// fleet wiring uses the node's address).
func NewRemoteExecutor(name string, client WireClient) *RemoteExecutor {
	return &RemoteExecutor{name: name, client: client}
}

// Name identifies the fault domain.
func (e *RemoteExecutor) Name() string { return e.name }

// Slots returns the worker's last probed slot capacity, 0 if the node
// has never answered a probe. The scheduler sums these into the
// fleet-wide capacity its Retry-After estimate divides by.
func (e *RemoteExecutor) Slots() int { return int(e.slots.Load()) }

// Probe asks the worker's readiness endpoint for its capacity account
// and caches the slot count. It returns the document (even from a
// draining worker, which answers 503 with a valid body) or an error
// when the node is unreachable or answered garbage.
func (e *RemoteExecutor) Probe(ctx context.Context) (WireReady, error) {
	status, body, err := e.client.Do(ctx, "GET", "/readyz", nil)
	if err != nil {
		return WireReady{}, fmt.Errorf("serve: probing worker %s: %w", e.name, err)
	}
	rd, perr := ParseWireReady(body)
	if perr != nil {
		return WireReady{}, fmt.Errorf("serve: worker %s readiness (status %d): %w", e.name, status, perr)
	}
	if rd.Slots > 0 {
		e.slots.Store(int64(rd.Slots))
	}
	return rd, nil
}

// callTimeout bounds one wire round trip: the lease TTL when leases are
// on (a call slower than the TTL is indistinguishable from a partition
// anyway), a fixed bound otherwise.
func callTimeout(lease *Lease) time.Duration {
	if ttl := lease.TTL(); ttl > 0 {
		return ttl
	}
	return remoteCallTimeout
}

// do runs one bounded wire round trip under the attempt's context.
func (e *RemoteExecutor) do(ctx context.Context, lease *Lease, method, path string, body []byte) (int, []byte, error) {
	cctx, cancel := context.WithTimeout(ctx, callTimeout(lease))
	defer cancel()
	return e.client.Do(cctx, method, path, body)
}

// cancelRemote tells the worker to abandon the attempt, best effort on
// a background context: the attempt's own context is already canceled
// by the time the coordinator gives up on it.
func (e *RemoteExecutor) cancelRemote(id string, epoch uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), remoteCancelTimeout)
	defer cancel()
	_, _, _ = e.client.Do(ctx, "DELETE", taskPath(id, epoch), nil)
}

// taskPath renders the wire path of one task at one epoch.
func taskPath(id string, epoch uint64) string {
	return fmt.Sprintf("/v1/tasks/%s?epoch=%d", id, epoch)
}

// Execute dispatches one attempt to the worker node and polls it to
// completion, renewing the coordinator's lease on every answered poll.
func (e *RemoteExecutor) Execute(ctx context.Context, task *Task, lease *Lease) (res dsmnc.Result, err error) {
	wr := WireRequest{
		ID:          task.ID,
		Attempt:     task.Attempt,
		Epoch:       lease.epoch,
		Fingerprint: task.Fingerprint,
		Request:     task.Request,
	}
	body, err := wr.Encode()
	if err != nil {
		return dsmnc.Result{}, err
	}
	status, ans, derr := e.do(ctx, lease, "POST", "/v1/tasks", body)
	if derr != nil {
		return dsmnc.Result{}, fmt.Errorf("%w: dispatching %s to worker %s: %v", ErrLeaseLost, task.ID, e.name, derr)
	}
	switch {
	case status == 200 || status == 202:
		// Admitted (202) or joined onto a task the worker already held
		// (200) — either way the poll loop takes it from here. The
		// dispatch answer may already be terminal (a healed partition
		// re-dispatching a finished task); handle it like a poll answer.
		if out, done, herr := e.handlePollAnswer(task, lease, ans); done {
			return out, herr
		}
	case status == 400 || status == 412:
		// Permanent: the worker cannot compile this request, or its base
		// options do not reproduce the coordinator's fingerprint. A
		// retry elsewhere would burn the budget on the same answer only
		// if every node is misconfigured — and a misconfigured fleet
		// must fail loudly, not quietly absorb the job.
		return dsmnc.Result{}, fmt.Errorf("serve: worker %s refused %s (status %d): %s", e.name, task.ID, status, wireErrorText(ans))
	default:
		// Shed (429), draining (503), stale epoch (409), a restarted
		// worker (404), or any other infrastructure answer: surrender
		// the lease and let the scheduler reassign with backoff.
		return dsmnc.Result{}, fmt.Errorf("%w: worker %s answered %s with status %d: %s", ErrLeaseLost, e.name, task.ID, status, wireErrorText(ans))
	}

	every := lease.heartbeatEvery()
	if every <= 0 {
		every = remotePollFloor
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			// The scheduler gave up on this attempt (lease revoked, job
			// canceled, drain): tell the worker to stop, best effort.
			e.cancelRemote(task.ID, lease.epoch)
			return dsmnc.Result{}, fmt.Errorf("%w: attempt on worker %s abandoned: %v", ErrLeaseLost, e.name, context.Cause(ctx))
		case <-tick.C:
			status, ans, derr := e.do(ctx, lease, "GET", taskPath(task.ID, lease.epoch), nil)
			if derr != nil {
				// Unreachable this round: no heartbeat. The worker may be
				// slow, partitioned or dead — the lease TTL, not this
				// poll, decides which; keep polling until the scheduler
				// decides.
				continue
			}
			if status != 200 {
				// 404 (restarted or evicted), 409 (a newer attempt holds
				// the task): the worker no longer holds this attempt.
				return dsmnc.Result{}, fmt.Errorf("%w: worker %s lost %s (status %d): %s", ErrLeaseLost, e.name, task.ID, status, wireErrorText(ans))
			}
			if out, done, herr := e.handlePollAnswer(task, lease, ans); done {
				return out, herr
			}
		}
	}
}

// handlePollAnswer interprets one answered poll (or dispatch) body:
// renew the lease for a live task, surface a terminal one. done reports
// whether Execute should return (out, err).
func (e *RemoteExecutor) handlePollAnswer(task *Task, lease *Lease, body []byte) (out dsmnc.Result, done bool, err error) {
	pr, perr := ParseWireResult(body)
	if perr != nil {
		// A worker speaking garbage is as lost as a dead one.
		return dsmnc.Result{}, true, fmt.Errorf("%w: worker %s: %v", ErrLeaseLost, e.name, perr)
	}
	if pr.ID != task.ID {
		return dsmnc.Result{}, true, fmt.Errorf("%w: worker %s answered for task %s, not %s", ErrLeaseLost, e.name, pr.ID, task.ID)
	}
	switch pr.State {
	case StateQueued, StateRunning:
		if !lease.Heartbeat() {
			// The lease is no longer current — revoked or superseded.
			// Stop the worker's attempt, best effort, and stand down.
			e.cancelRemote(task.ID, lease.epoch)
			return dsmnc.Result{}, true, fmt.Errorf("%w: lease for %s no longer current", ErrLeaseLost, task.ID)
		}
		return dsmnc.Result{}, false, nil
	case StateDone:
		return *pr.Result, true, nil
	case StateFailed:
		return dsmnc.Result{}, true, fmt.Errorf("serve: worker %s failed %s: %s", e.name, task.ID, pr.Error)
	default: // StateCanceled: the worker drained or was told to stop.
		return dsmnc.Result{}, true, fmt.Errorf("%w: worker %s canceled %s: %s", ErrLeaseLost, e.name, task.ID, pr.Error)
	}
}

// wireErrorText extracts the human half of a wire error body for log
// and error messages, falling back to the raw bytes.
func wireErrorText(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := decodeStrict(body, MaxWireResultBytes, "error body", &e); err == nil && e.Error != "" {
		return e.Error
	}
	if len(body) > 120 {
		body = body[:120]
	}
	return string(body)
}

var _ Executor = (*RemoteExecutor)(nil)
