package serve

// The sharded serving soak (make parallel-smoke): real golden-corpus
// cells run concurrently on a worker pool whose machines use the
// parallel engine — several sharded engines' goroutine crews live at
// once under the race detector — and every result must still equal the
// committed sequential corpus field for field. Requests override the
// scheduler's default shard count both ways (more shards, forced
// sequential) to exercise the per-request knob.

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"dsmnc"
	"dsmnc/stats"
)

func TestServeShardedSoak(t *testing.T) {
	// The engine degrades to its in-order path on one execution core;
	// the soak must run real sharded worker crews even on a one-core
	// CI box, so give the scheduler's pool somewhere to fan out.
	if old := runtime.GOMAXPROCS(0); old < 4 {
		runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
	opt := dsmnc.DefaultOptions()
	opt.Shards = 2 // scheduler-wide default: every job's machine shards
	s := mustScheduler(t, Config{Workers: 4, QueueDepth: 64, Options: opt})
	defer s.Drain(context.Background())

	var ids []string
	for _, bench := range []string{"FFT", "Ocean", "LU"} {
		for _, req := range goldenRequests(bench) {
			ids = append(ids, submit(t, s, req))
		}
	}
	// Per-request overrides: 4 shards and forced-sequential must land
	// on the same results (and the same coalesced job IDs would be
	// wrong — shards is identity-free, so they dedup against the
	// earlier submissions).
	for _, shards := range []int{4, -1} {
		req := Request{Bench: "Ocean", System: "vb", Shards: shards}
		ids = append(ids, submit(t, s, req))
	}

	for _, id := range ids {
		st, err := s.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("%s/%s finished as %s: %s", st.System, st.Bench, st.State, st.Error)
		}
		res, _, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(goldenFile(st))
		if err != nil {
			t.Fatalf("no committed golden for served cell: %v", err)
		}
		var want goldenCell
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("corrupt golden file: %v", err)
		}
		if res.Refs != want.Refs {
			t.Errorf("%s/%s: Refs drifted: got %d, want %d", st.System, st.Bench, res.Refs, want.Refs)
		}
		for _, d := range stats.DiffCounters(res.Counters, want.Stats) {
			t.Errorf("%s/%s: %s", st.System, st.Bench, d.String())
		}
	}
}

// TestShardsIdentityFree pins the coalescing contract: submissions
// differing only in shard count are the same job.
func TestShardsIdentityFree(t *testing.T) {
	a := Request{Bench: "FFT", System: "base"}
	b := Request{Bench: "FFT", System: "base", Shards: 4}
	c := Request{Bench: "FFT", System: "base", Shards: -1}
	if a.Fingerprint() != b.Fingerprint() || a.Fingerprint() != c.Fingerprint() {
		t.Fatalf("shard count leaked into the request fingerprint")
	}
}

func submit(t *testing.T, s *Scheduler, req Request) string {
	t.Helper()
	st, err := s.Submit(req)
	if err != nil {
		t.Fatalf("%s/%s: %v", req.Bench, req.System, err)
	}
	return st.ID
}
