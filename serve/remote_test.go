package serve

// RemoteExecutor integration tests: a real Scheduler dispatching onto
// in-process Workers through the wire protocol, with the transport
// replaced by a direct WireClient — no sockets, so the suite runs at
// full speed under -race. The cmd/dsmserved fleet torture suite covers
// the same paths over real HTTP between real processes.

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dsmnc"
)

// workerClient drives a Worker directly as a WireClient, with a
// partition switch: while down, every exchange errors like a dead or
// unreachable node.
type workerClient struct {
	w    *Worker
	down atomic.Bool
}

func (c *workerClient) Do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	if c.down.Load() {
		return 0, nil, errors.New("connection refused (simulated partition)")
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	u, err := url.Parse(path)
	if err != nil {
		return 0, nil, err
	}
	switch {
	case method == "POST" && u.Path == "/v1/tasks":
		code, ans := c.w.Dispatch(body)
		return code, ans, nil
	case method == "GET" && u.Path == "/readyz":
		code, ans := c.w.Ready()
		return code, ans, nil
	case (method == "GET" || method == "DELETE") && strings.HasPrefix(u.Path, "/v1/tasks/"):
		id := strings.TrimPrefix(u.Path, "/v1/tasks/")
		epoch, err := strconv.ParseUint(u.Query().Get("epoch"), 10, 64)
		if err != nil {
			return 400, wireError(err), nil
		}
		if method == "DELETE" {
			code, ans := c.w.CancelTask(id, epoch)
			return code, ans, nil
		}
		code, ans := c.w.Poll(id, epoch)
		return code, ans, nil
	}
	return 404, wireError(fmt.Errorf("no route %s %s", method, path)), nil
}

// fleetHarness is one coordinator over N in-process worker nodes.
type fleetHarness struct {
	s       *Scheduler
	workers []*Worker
	clients []*workerClient
	execs   []*RemoteExecutor
}

// newFleetHarness builds nodes running the given synthetic engine and a
// scheduler dispatching onto them with hash routing, short leases and a
// generous retry budget (overridable via mut).
func newFleetHarness(t *testing.T, nodes int, run func(ctx context.Context, wt *workerTask) (dsmnc.Result, error), mut func(*Config)) *fleetHarness {
	t.Helper()
	h := &fleetHarness{}
	var execs []Executor
	for n := 0; n < nodes; n++ {
		w, err := NewWorker(WorkerConfig{Slots: 2, runFn: run})
		if err != nil {
			t.Fatal(err)
		}
		c := &workerClient{w: w}
		e := NewRemoteExecutor(fmt.Sprintf("node-%d", n), c)
		if _, err := e.Probe(context.Background()); err != nil {
			t.Fatal(err)
		}
		h.workers = append(h.workers, w)
		h.clients = append(h.clients, c)
		h.execs = append(h.execs, e)
		execs = append(execs, e)
	}
	cfg := Config{
		Workers: 4, HashRouting: true, Executors: execs,
		LeaseTTL: 150 * time.Millisecond, MaxRetries: 6, RetryBackoff: 10 * time.Millisecond,
		// The scheduler-side engine seam is unused — execution happens
		// on the workers — but keep it synthetic for safety.
		runFn: func(ctx context.Context, j *job) (dsmnc.Result, error) { return dsmnc.Result{}, nil },
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.s = s
	return h
}

func TestRemoteExecutorCompletesJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	h := newFleetHarness(t, 2, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		return dsmnc.Result{System: wt.sys.Name, Bench: wt.bench.Name, Refs: int64(wt.req.NCBytes)}, nil
	}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for n := 0; n < 8; n++ {
		st, err := h.s.Submit(req(n))
		if err != nil {
			t.Fatal(err)
		}
		fin, err := h.s.Wait(ctx, st.ID)
		if err != nil || fin.State != StateDone {
			t.Fatalf("job %d: %v / %v", n, fin, err)
		}
		res, _, err := h.s.Result(st.ID)
		if err != nil || res.Refs != int64(req(n).NCBytes) {
			t.Fatalf("job %d result %+v / %v; want the worker's payload", n, res, err)
		}
	}
	if got := h.s.reassigned.Load(); got != 0 {
		t.Fatalf("healthy fleet reassigned %d jobs", got)
	}
	// Fleet capacity reached the scheduler through the probes.
	if got := h.s.fleetSlots(); got != 4 {
		t.Fatalf("fleetSlots = %d; want 2 nodes x 2 slots", got)
	}
	if err := h.s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestRemoteExecutorPartitionReassigns: a node that stops answering
// mid-run loses the lease at the TTL and the job completes on the other
// node — the unit-scale version of the fleet torture's kill drill.
func TestRemoteExecutorPartitionReassigns(t *testing.T) {
	before := runtime.NumGoroutine()
	gate := make(chan struct{})
	h := newFleetHarness(t, 2, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		select {
		case <-gate:
			return dsmnc.Result{Refs: 42}, nil
		case <-ctx.Done():
			return dsmnc.Result{}, ctx.Err()
		}
	}, nil)
	st, err := h.s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	// Find the node the job landed on and partition it.
	deadline := time.Now().Add(5 * time.Second)
	var homeIdx = -1
	for homeIdx < 0 {
		for i, w := range h.workers {
			w.mu.Lock()
			_, held := w.tasks[st.ID]
			w.mu.Unlock()
			if held {
				homeIdx = i
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a worker")
		}
	}
	h.clients[homeIdx].down.Store(true)
	// Unblock the engine everywhere; the partitioned node's result can
	// never reach the coordinator, the other node's does.
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fin, err := h.s.Wait(ctx, st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("job after partition: %+v / %v", fin, err)
	}
	res, _, err := h.s.Result(st.ID)
	if err != nil || res.Refs != 42 {
		t.Fatalf("result after partition: %+v / %v", res, err)
	}
	if got := h.s.leaseLost.Load(); got == 0 {
		t.Fatal("partition did not register as a lease loss")
	}
	if fin.Attempt < 2 {
		t.Fatalf("job finished on attempt %d; want a reassignment", fin.Attempt)
	}
	if err := h.s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestRemoteExecutorSlowIsNotDead: a worker slower than the lease TTL
// but still answering polls keeps renewing the lease and finishes on
// the first attempt — slowness must not read as death.
func TestRemoteExecutorSlowIsNotDead(t *testing.T) {
	before := runtime.NumGoroutine()
	h := newFleetHarness(t, 1, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		select {
		case <-time.After(600 * time.Millisecond): // 4x the lease TTL
			return dsmnc.Result{Refs: 1}, nil
		case <-ctx.Done():
			return dsmnc.Result{}, ctx.Err()
		}
	}, nil)
	st, err := h.s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fin, err := h.s.Wait(ctx, st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("slow job: %+v / %v", fin, err)
	}
	if fin.Attempt != 1 || h.s.reassigned.Load() != 0 {
		t.Fatalf("slow-but-alive worker was treated as dead: attempt %d, %d reassignments",
			fin.Attempt, h.s.reassigned.Load())
	}
	if err := h.s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestRemoteExecutorShedReassigns: a full worker sheds the dispatch
// with 429, which surfaces as a lease surrender and the job retries
// until a slot frees — shed is backpressure, not failure.
func TestRemoteExecutorShedReassigns(t *testing.T) {
	before := runtime.NumGoroutine()
	gate := make(chan struct{})
	h := newFleetHarness(t, 1, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		select {
		case <-gate:
			return dsmnc.Result{Refs: 1}, nil
		case <-ctx.Done():
			return dsmnc.Result{}, ctx.Err()
		}
	}, nil)
	// Fill the node (2 slots + 4 queue) with direct dispatches the
	// coordinator knows nothing about.
	w := h.workers[0]
	for n := 100; n < 106; n++ {
		body, _ := dispatchFor(t, w, n, 1, 1)
		if code, ans := w.Dispatch(body); code != 202 {
			t.Fatalf("fill dispatch %d = %d: %s", n, code, ans)
		}
	}
	st, err := h.s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	// The dispatch must be shed at least once before a slot frees.
	deadline := time.Now().Add(5 * time.Second)
	for w.shed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("full worker never shed the dispatch")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fin, err := h.s.Wait(ctx, st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("job after shed: %+v / %v", fin, err)
	}
	if err := h.s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestRemoteExecutorConfigMismatchIsPermanent: a worker whose base
// options cannot reproduce the coordinator's fingerprint refuses the
// dispatch with 412 and the job fails permanently — a misconfigured
// fleet fails loudly instead of burning the retry budget.
func TestRemoteExecutorConfigMismatchIsPermanent(t *testing.T) {
	before := runtime.NumGoroutine()
	mism := dsmnc.DefaultOptions()
	mism.L1Bytes *= 2
	w, err := NewWorker(WorkerConfig{Slots: 1, Options: mism,
		runFn: func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) { return dsmnc.Result{}, nil }})
	if err != nil {
		t.Fatal(err)
	}
	e := NewRemoteExecutor("node-misconf", &workerClient{w: w})
	s, err := New(Config{Workers: 1, Executors: []Executor{e},
		LeaseTTL: 150 * time.Millisecond, MaxRetries: 3, RetryBackoff: 10 * time.Millisecond,
		runFn: func(ctx context.Context, j *job) (dsmnc.Result, error) { return dsmnc.Result{}, nil }})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fin, err := s.Wait(ctx, st.ID)
	if err != nil || fin.State != StateFailed {
		t.Fatalf("mismatched job: %+v / %v; want a permanent failure", fin, err)
	}
	if !strings.Contains(fin.Error, "412") && !strings.Contains(fin.Error, "fingerprint") {
		t.Fatalf("failure %q does not surface the config mismatch", fin.Error)
	}
	if fin.Attempt != 1 {
		t.Fatalf("mismatch burned %d attempts; permanent errors must not retry", fin.Attempt)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestRemoteExecutorCancelPropagates: cancelling a job on the
// coordinator cancels the worker-side task.
func TestRemoteExecutorCancelPropagates(t *testing.T) {
	before := runtime.NumGoroutine()
	h := newFleetHarness(t, 1, func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
		<-ctx.Done()
		return dsmnc.Result{}, ctx.Err()
	}, nil)
	st, err := h.s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker holds the task, then cancel on the
	// coordinator.
	w := h.workers[0]
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		_, held := w.tasks[st.ID]
		w.mu.Unlock()
		if held {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached the worker")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := h.s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fin, err := h.s.Wait(ctx, st.ID)
	if err != nil || fin.State != StateCanceled {
		t.Fatalf("canceled job: %+v / %v", fin, err)
	}
	// The worker's task settles canceled too (via the propagated
	// cancel), not done.
	deadline = time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		wt, held := w.tasks[st.ID]
		state := StateQueued
		if held {
			state = wt.state
		}
		w.mu.Unlock()
		if held && state == StateCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker task state %s; want canceled", state)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := h.s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestRemoteExecutorProbeDraining: a draining worker still answers the
// probe (503) with a valid capacity document.
func TestRemoteExecutorProbeDraining(t *testing.T) {
	w, err := NewWorker(WorkerConfig{Slots: 3,
		runFn: func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) { return dsmnc.Result{}, nil }})
	if err != nil {
		t.Fatal(err)
	}
	e := NewRemoteExecutor("node", &workerClient{w: w})
	rd, err := e.Probe(context.Background())
	if err != nil || !rd.Ready || rd.Slots != 3 || e.Slots() != 3 {
		t.Fatalf("probe: %+v / %v (slots %d)", rd, err, e.Slots())
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := w.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rd, err = e.Probe(context.Background())
	if err != nil || rd.Ready || rd.Reason != "draining" {
		t.Fatalf("probe of a draining worker: %+v / %v", rd, err)
	}
}
