package serve

// The ledger's own contract, independent of the scheduler: round-trip
// fidelity, torn-tail truncation, corruption detection, compaction
// atomicity, and the fuzz guarantee that no byte sequence panics the
// loader. The scheduler-level recovery behavior lives in
// recovery_test.go; the full-binary SIGKILL suite in cmd/dsmserved.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dsmnc"
)

// ledgerPath returns a fresh ledger path in a per-test temp dir.
func ledgerPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.ledger")
}

func TestLedgerRoundTrip(t *testing.T) {
	path := ledgerPath(t)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r1, r2 := req(1), req(2)
	res := dsmnc.Result{System: "nc", Bench: "FFT", Refs: 42}
	if err := l.accepted("job1", r1, "fp1", t0); err != nil {
		t.Fatal(err)
	}
	if err := l.accepted("job2", r2, "fp2", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := l.started("job1", t0.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := l.terminal("job1", StateDone, "", &res, t0.Add(3*time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := l.Records(); got != 4 {
		t.Fatalf("Records() = %d, want 4", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	jobs := l2.jobs()
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(jobs))
	}
	j1, j2 := jobs[0], jobs[1]
	if j1.id != "job1" || j2.id != "job2" {
		t.Fatalf("recovery order = %s, %s; want job1, job2", j1.id, j2.id)
	}
	if j1.state != StateDone || j1.res == nil || j1.res.Refs != 42 {
		t.Errorf("job1 recovered as %s with result %+v; want done with Refs=42", j1.state, j1.res)
	}
	if !j1.queued.Equal(t0) || !j1.started.Equal(t0.Add(2*time.Second)) || !j1.finished.Equal(t0.Add(3*time.Second)) {
		t.Errorf("job1 timestamps not preserved: %v / %v / %v", j1.queued, j1.started, j1.finished)
	}
	if j2.state != StateQueued || j2.req.NCBytes != r2.NCBytes || j2.fingerprint != "fp2" {
		t.Errorf("job2 recovered as %s req %+v fp %s; want queued with its request", j2.state, j2.req, j2.fingerprint)
	}
}

func TestLedgerTornTailTruncated(t *testing.T) {
	path := ledgerPath(t)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.accepted("job1", req(1), "fp", time.Now()); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a crash mid-append: a fragment with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	intact, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"sum":"00000000","rec":{"kind":"ter`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatalf("torn tail must not fail the open: %v", err)
	}
	if got := l2.Records(); got != 1 {
		t.Fatalf("Records() = %d after torn tail, want 1", got)
	}
	// The fragment is gone and the next append lands on a record
	// boundary.
	if err := l2.started("job1", time.Now()); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if st, err := os.Stat(path); err != nil || st.Size() <= intact.Size() {
		t.Fatalf("truncate-then-append went wrong: size %d vs intact %d (%v)", st.Size(), intact.Size(), err)
	}
	l3, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	jobs := l3.jobs()
	if len(jobs) != 1 || jobs[0].state != StateRunning {
		t.Fatalf("after truncation recovered %+v, want one running job", jobs)
	}
}

func TestLedgerCorruptionDetected(t *testing.T) {
	good, err := encodeLedgerLine(ledgerRecord{Kind: recStarted, ID: "job1", Time: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"terminated garbage": "not json at all\n",
		// A flipped body byte must fail the CRC before the content is
		// believed.
		"bad checksum":             string(bytes.Replace(good, []byte(`job1`), []byte(`jobX`), 1)),
		"missing id":               line(t, ledgerRecord{Kind: recStarted}),
		"accepted without request": line(t, ledgerRecord{Kind: recAccepted, ID: "x"}),
		"terminal with live state": line(t, ledgerRecord{Kind: recTerminal, ID: "x", State: StateRunning}),
		"unknown kind":             line(t, ledgerRecord{Kind: "promoted", ID: "x"}),
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			path := ledgerPath(t)
			if err := os.WriteFile(path, append(good, payload...), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := OpenLedger(path)
			if !errors.Is(err, ErrBadLedger) {
				t.Fatalf("OpenLedger = %v, want ErrBadLedger", err)
			}
		})
	}
}

// line encodes one record and corrupts nothing: used to build ledgers
// whose framing is valid but whose content is impossible.
func line(t *testing.T, rec ledgerRecord) string {
	t.Helper()
	b, err := encodeLedgerLine(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestLedgerCompact(t *testing.T) {
	path := ledgerPath(t)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC()
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("job%d", i)
		if err := l.accepted(id, req(i), "fp", now); err != nil {
			t.Fatal(err)
		}
		if err := l.terminal(id, StateFailed, "boom", nil, now); err != nil {
			t.Fatal(err)
		}
	}
	// Compact down to one surviving job, then append on the new file.
	keep := req(3)
	err = l.compact([]ledgerRecord{
		{Kind: recAccepted, ID: "job3", Time: now, Request: &keep, Fingerprint: "fp"},
		{Kind: recTerminal, ID: "job3", Time: now, State: StateFailed, Error: "boom"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Records(); got != 2 {
		t.Fatalf("Records() = %d after compaction, want 2", got)
	}
	if err := l.accepted("job99", req(99), "fp", now); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	jobs := l2.jobs()
	if len(jobs) != 2 || jobs[0].id != "job3" || jobs[1].id != "job99" {
		ids := make([]string, len(jobs))
		for i, j := range jobs {
			ids[i] = j.id
		}
		t.Fatalf("recovered %v, want [job3 job99]", ids)
	}
	if jobs[0].state != StateFailed || jobs[0].errMsg != "boom" {
		t.Errorf("job3 recovered as %s %q", jobs[0].state, jobs[0].errMsg)
	}
}

// FuzzLedger is the loader's no-panic guarantee: any byte sequence
// either parses, ends in a clean torn-tail truncation point, or fails
// with an ErrBadLedger-wrapped error — never a panic, never another
// error class, never a truncation point past the input.
func FuzzLedger(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"sum":"00000000","rec":{}}` + "\n"))
	if good, err := encodeLedgerLine(ledgerRecord{
		Kind: recAccepted, ID: "job1", Request: &Request{Bench: "FFT", System: "nc"}, Fingerprint: "fp",
	}); err == nil {
		f.Add(good)
		f.Add(good[:len(good)-1])         // torn tail
		f.Add(append(good, good[:10]...)) // record + fragment
		f.Add(bytes.Repeat(good, 3))
	}
	if reas, err := encodeLedgerLine(ledgerRecord{
		Kind: recReassigned, ID: "job1", Attempt: 2,
	}); err == nil {
		f.Add(reas)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := parseLedger(bufio.NewReader(bytes.NewReader(data)), "fuzz")
		if err != nil {
			if !errors.Is(err, ErrBadLedger) {
				t.Fatalf("parseLedger error %v is outside the ErrBadLedger family", err)
			}
			return
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("truncation point %d outside input of %d bytes", good, len(data))
		}
		for _, rec := range recs {
			if rec.ID == "" {
				t.Fatal("parser accepted a record without a job id")
			}
		}
	})
}
