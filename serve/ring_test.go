package serve

// Metamorphic properties of the consistent-hash routing: the assignment
// is a pure function of the name set (registration order and replica
// identity are irrelevant), and a node joining or leaving moves only
// ~1/N of the fingerprints — every key not homed on the departed node
// keeps exactly the home it had.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"dsmnc"
)

// ringKeys fabricates job-ID-shaped routing keys.
func ringKeys(n int) []string {
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x", rng.Uint64())
	}
	return keys
}

func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("10.0.0.%d:9city", i+1)
	}
	return names
}

// TestRingPermutationInvariance: the ring is canonical in the name set —
// any registration order routes every key identically.
func TestRingPermutationInvariance(t *testing.T) {
	names := ringNames(5)
	keys := ringKeys(2000)
	base := newRing(names)
	perm := append([]string{}, names...)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		rng.Shuffle(len(perm), func(i, k int) { perm[i], perm[k] = perm[k], perm[i] })
		r := newRing(perm)
		for _, key := range keys {
			if got, want := r.pick(key), base.pick(key); got != want {
				t.Fatalf("order %v routes %s to %s; canonical order routes it to %s", perm, key, got, want)
			}
		}
	}
	// Duplicates collapse rather than double a node's share.
	dup := newRing(append(append([]string{}, names...), names...))
	for _, key := range keys[:200] {
		if got, want := dup.pick(key), base.pick(key); got != want {
			t.Fatalf("duplicated names route %s to %s; want %s", key, got, want)
		}
	}
}

// TestRingStabilityUnderLeave: removing one node relocates only that
// node's keys — every survivor-homed key keeps exactly its home — and
// the departed node's share is ~1/N of the keyspace.
func TestRingStabilityUnderLeave(t *testing.T) {
	names := ringNames(6)
	keys := ringKeys(6000)
	full := newRing(names)
	gone := names[2]
	smaller := newRing(append(append([]string{}, names[:2]...), names[3:]...))
	moved, displaced := 0, 0
	for _, key := range keys {
		before := full.pick(key)
		after := smaller.pick(key)
		if before == gone {
			displaced++
			if after == gone {
				t.Fatalf("key %s still routes to the removed node", key)
			}
			continue
		}
		if after != before {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not homed on the removed node changed homes; consistent hashing moves only the departed share", moved)
	}
	share := float64(displaced) / float64(len(keys))
	if share < 0.5/6 || share > 2.0/6 {
		t.Fatalf("removed node held %.1f%% of the keyspace; want ~%.1f%%", 100*share, 100.0/6)
	}
}

// TestRingStabilityUnderJoin: adding a node steals ~1/(N+1) of the keys
// and every key it does not steal keeps exactly its home.
func TestRingStabilityUnderJoin(t *testing.T) {
	names := ringNames(5)
	keys := ringKeys(6000)
	before := newRing(names)
	joined := "10.0.0.99:9city"
	after := newRing(append(append([]string{}, names...), joined))
	stolen, moved := 0, 0
	for _, key := range keys {
		b, a := before.pick(key), after.pick(key)
		if a == joined {
			stolen++
			continue
		}
		if a != b {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between pre-existing nodes on a join; only the new node may gain keys", moved)
	}
	share := float64(stolen) / float64(len(keys))
	if share < 0.5/6 || share > 2.0/6 {
		t.Fatalf("joined node stole %.1f%% of the keyspace; want ~%.1f%%", 100*share, 100.0/6)
	}
}

// TestRingOrderIsCompleteFallback: the ring walk from any key visits
// every node exactly once, starting at the key's home — the fallback
// order a dispatch follows when domains are unhealthy.
func TestRingOrderIsCompleteFallback(t *testing.T) {
	names := ringNames(4)
	r := newRing(names)
	for _, key := range ringKeys(200) {
		order := r.order(key)
		if len(order) != len(names) {
			t.Fatalf("order(%s) visits %d nodes; want all %d", key, len(order), len(names))
		}
		if order[0] != r.pick(key) {
			t.Fatalf("order(%s) starts at %s, not the home %s", key, order[0], r.pick(key))
		}
		seen := map[string]bool{}
		for _, name := range order {
			if seen[name] {
				t.Fatalf("order(%s) visits %s twice", key, name)
			}
			seen[name] = true
		}
	}
	if empty := newRing(nil); empty.pick("0123456789abcdef") != "" || empty.order("0123456789abcdef") != nil {
		t.Fatal("empty ring should route nowhere")
	}
}

// TestHashRoutingReplicaAgreement is the coordinator-replica half of the
// metamorphic property: two schedulers configured with the same executor
// names — registered in different orders — dispatch every job of the
// same spec to the same fault domain, and each job lands on its ring
// home.
func TestHashRoutingReplicaAgreement(t *testing.T) {
	before := runtime.NumGoroutine()
	names := []string{"node-a", "node-b", "node-c"}
	build := func(order []int) (*Scheduler, *sync.Map) {
		var ran sync.Map // task ID -> executor name
		execs := make([]Executor, 0, len(names))
		for _, i := range order {
			name := names[i]
			execs = append(execs, &funcExecutor{name: name, fn: func(ctx context.Context, task *Task, l *Lease) (dsmnc.Result, error) {
				ran.Store(task.ID, name)
				return dsmnc.Result{Refs: 1}, nil
			}})
		}
		s, err := New(Config{Workers: 2, HashRouting: true, Executors: execs,
			runFn: func(ctx context.Context, j *job) (dsmnc.Result, error) { return dsmnc.Result{}, nil }})
		if err != nil {
			t.Fatal(err)
		}
		return s, &ran
	}
	sA, ranA := build([]int{0, 1, 2})
	sB, ranB := build([]int{2, 0, 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ring := newRing(names)
	homes := map[string]bool{}
	for n := 0; n < 24; n++ {
		stA, err := sA.Submit(req(n))
		if err != nil {
			t.Fatal(err)
		}
		stB, err := sB.Submit(req(n))
		if err != nil {
			t.Fatal(err)
		}
		if stA.ID != stB.ID {
			t.Fatalf("replicas derived different IDs for the same request: %s vs %s", stA.ID, stB.ID)
		}
		if _, err := sA.Wait(ctx, stA.ID); err != nil {
			t.Fatal(err)
		}
		if _, err := sB.Wait(ctx, stB.ID); err != nil {
			t.Fatal(err)
		}
		a, okA := ranA.Load(stA.ID)
		b, okB := ranB.Load(stB.ID)
		if !okA || !okB {
			t.Fatalf("job %s did not run on both replicas", stA.ID)
		}
		if a != b {
			t.Fatalf("replicas routed job %s to different domains: %v vs %v", stA.ID, a, b)
		}
		if home := ring.pick(stA.ID); a != home {
			t.Fatalf("job %s ran on %v, not its ring home %s", stA.ID, a, home)
		}
		homes[a.(string)] = true
	}
	if len(homes) < 2 {
		t.Fatalf("all 24 jobs landed on one domain; the ring is not spreading (homes %v)", homes)
	}
	if err := sA.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sB.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestHashRoutingFallsBackOffHome: when a job's home domain keeps
// surrendering the lease, the retry walks the ring to the next domain
// instead of failing — and the breaker/quarantine machinery from PR 7
// applies to ring routing unchanged.
func TestHashRoutingFallsBackOffHome(t *testing.T) {
	before := runtime.NumGoroutine()
	names := []string{"node-a", "node-b", "node-c"}
	var mu sync.Mutex
	ranOn := []string{}
	execs := make([]Executor, 0, len(names))
	for _, name := range names {
		name := name
		execs = append(execs, &funcExecutor{name: name, fn: func(ctx context.Context, task *Task, l *Lease) (dsmnc.Result, error) {
			mu.Lock()
			ranOn = append(ranOn, name)
			first := len(ranOn) == 1
			mu.Unlock()
			if first {
				return dsmnc.Result{}, fmt.Errorf("%w: home node rebooted", ErrLeaseLost)
			}
			return dsmnc.Result{Refs: 1}, nil
		}})
	}
	s, err := New(Config{Workers: 1, HashRouting: true, Executors: execs,
		MaxRetries: 2, RetryBackoff: -1,
		runFn: func(ctx context.Context, j *job) (dsmnc.Result, error) { return dsmnc.Result{}, nil }})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fin, err := s.Wait(ctx, st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("job after home loss: %v / %v", fin, err)
	}
	ring := newRing(names)
	order := ring.order(st.ID)
	mu.Lock()
	defer mu.Unlock()
	if len(ranOn) != 2 || ranOn[0] != order[0] || ranOn[1] != order[1] {
		t.Fatalf("attempts ran on %v; want the ring walk %v", ranOn, order[:2])
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}
