package serve

// The job-submission surface: a small JSON request naming one
// (benchmark, system) cell of the paper's design space, decoded
// strictly and validated into the existing dsmnc constructors. The
// decoder is hardened — any input bytes produce either a valid Request
// or an ErrBadRequest-wrapped error, never a panic (FuzzJobRequest).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"dsmnc"
	"dsmnc/memsys"
	"dsmnc/workload"
)

// MaxRequestBytes bounds what ParseRequest will even look at; the HTTP
// binding enforces the same limit on the wire.
const MaxRequestBytes = 1 << 16

// defaultNCBytes is the paper's 16 KB SRAM network cache, used when a
// request names an NC-bearing system without sizing it.
const defaultNCBytes = 16 << 10

// defaultVXPThreshold is the vxp relocation threshold used when the
// request leaves it unset (the paper's Figure 11 baseline).
const defaultVXPThreshold = 32

// defaultNCWays is the paper's fixed NC associativity (§5.1).
const defaultNCWays = 4

// defaultNCDBytes is the paper's 512 KB inclusive DRAM NC.
const defaultNCDBytes = 512 << 10

// Request names one simulation job: a benchmark, a system organization
// from the paper's design space, and the knobs that size it. The zero
// values of the optional fields mean "the paper's defaults".
type Request struct {
	// Bench is the workload name (FFT, Ocean, Radix, ...; see
	// workload.Names).
	Bench string `json:"bench"`
	// System is the organization: base, origin, NCS, NCD, infDRAM,
	// nc, vb, vp, pc or vxp.
	System string `json:"system"`
	// NCBytes sizes the network cache of nc/vb/vp/vxp systems (0 means
	// the paper's 16 KB) and of NCD (0 means the paper's 512 KB).
	NCBytes int `json:"nc_bytes,omitempty"`
	// NCWays sets the NC associativity of NC-bearing systems; 0 means
	// the paper's 4-way. Must be a power of two no larger than 16.
	NCWays int `json:"nc_ways,omitempty"`
	// PCBytes attaches a page cache of an absolute size to nc/vb/vp
	// (the paper's ncp/vbp/vpp organizations).
	PCBytes int64 `json:"pc_bytes,omitempty"`
	// PCFrac attaches a page cache sized 1/PCFrac of the workload's
	// data set (ncp5, vbp5, ...); required for pc and vxp.
	PCFrac int `json:"pc_frac,omitempty"`
	// Threshold overrides the relocation threshold of page-cache
	// systems; 0 means the adaptive default (32 for vxp).
	Threshold uint32 `json:"threshold,omitempty"`
	// Scale is the workload scale: test, small, medium or large;
	// empty means small.
	Scale string `json:"scale,omitempty"`
	// Check attaches the coherence invariant checker to the run.
	Check bool `json:"check,omitempty"`
	// TimeoutMS bounds the job's run time in milliseconds; 0 means the
	// scheduler's default. It does not contribute to the job's
	// identity: two submissions differing only in timeout coalesce.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Shards runs the job on the deterministic parallel engine with
	// that many shards (see dsmnc.Options.Shards); 0 inherits the
	// scheduler's default, -1 forces the sequential engine. Results
	// are bit-identical at every shard count, so Shards — like
	// TimeoutMS — does not contribute to the job's identity.
	Shards int `json:"shards,omitempty"`
}

// ParseRequest decodes and validates one JSON job request. Every
// failure — oversized input, malformed JSON, unknown fields, trailing
// garbage, unknown names, out-of-range parameters — is an
// ErrBadRequest-wrapped error.
func ParseRequest(data []byte) (Request, error) {
	if len(data) > MaxRequestBytes {
		return Request{}, fmt.Errorf("%w: request body over %d bytes", ErrBadRequest, MaxRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Request
	if err := dec.Decode(&r); err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return Request{}, fmt.Errorf("%w: trailing data after the request object", ErrBadRequest)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return Request{}, fmt.Errorf("%w: trailing data after the request object", ErrBadRequest)
	}
	r = r.normalized()
	if err := r.validate(); err != nil {
		return Request{}, err
	}
	return r, nil
}

// normalized fills the paper's defaults in, so equivalent requests
// share one canonical form (and therefore one job ID).
func (r Request) normalized() Request {
	if r.Scale == "" {
		r.Scale = "small"
	}
	switch r.System {
	case "nc", "vb", "vp", "vxp":
		if r.NCBytes == 0 {
			r.NCBytes = defaultNCBytes
		}
		if r.NCWays == 0 {
			r.NCWays = defaultNCWays
		}
	case "NCD":
		if r.NCBytes == 0 {
			r.NCBytes = defaultNCDBytes
		}
		if r.NCWays == 0 {
			r.NCWays = defaultNCWays
		}
	}
	if r.System == "vxp" && r.Threshold == 0 {
		r.Threshold = defaultVXPThreshold
	}
	return r
}

// parseScale maps the request's scale name to the workload scale.
func parseScale(s string) (workload.Scale, error) {
	switch s {
	case "test":
		return workload.ScaleTest, nil
	case "small":
		return workload.ScaleSmall, nil
	case "medium":
		return workload.ScaleMedium, nil
	case "large":
		return workload.ScaleLarge, nil
	}
	return 0, fmt.Errorf("%w: unknown scale %q (test|small|medium|large)", ErrBadRequest, s)
}

// validate checks a normalized request against the design space: known
// names, in-range sizes, and no parameters that the named system would
// silently ignore.
func (r Request) validate() error {
	scale, err := parseScale(r.Scale)
	if err != nil {
		return err
	}
	if r.Bench == "" {
		return fmt.Errorf("%w: missing bench", ErrBadRequest)
	}
	if workload.ByName(r.Bench, scale) == nil {
		return fmt.Errorf("%w: unknown bench %q (one of %v)", ErrBadRequest, r.Bench, workload.Names())
	}
	if r.NCBytes < 0 || r.NCWays < 0 || r.PCBytes < 0 || r.PCFrac < 0 || r.TimeoutMS < 0 {
		return fmt.Errorf("%w: negative size, ways or timeout", ErrBadRequest)
	}
	if r.NCBytes > 16<<20 {
		return fmt.Errorf("%w: nc_bytes %d over the 16 MiB bound", ErrBadRequest, r.NCBytes)
	}
	if r.NCWays != 0 {
		if r.NCWays > 16 || r.NCWays&(r.NCWays-1) != 0 {
			return fmt.Errorf("%w: nc_ways %d is not a power of two in [1,16]", ErrBadRequest, r.NCWays)
		}
		switch r.System {
		case "nc", "vb", "vp", "vxp", "NCD":
		default:
			return fmt.Errorf("%w: system %q has no network cache to set nc_ways on", ErrBadRequest, r.System)
		}
		if r.NCBytes/memsys.BlockBytes < r.NCWays {
			return fmt.Errorf("%w: nc_bytes %d too small for %d ways", ErrBadRequest, r.NCBytes, r.NCWays)
		}
	}
	if r.PCBytes > 1<<31 {
		return fmt.Errorf("%w: pc_bytes %d over the 2 GiB bound", ErrBadRequest, r.PCBytes)
	}
	if r.PCFrac > 64 {
		return fmt.Errorf("%w: pc_frac %d over the 1/64 bound", ErrBadRequest, r.PCFrac)
	}
	if r.Threshold > 1<<20 {
		return fmt.Errorf("%w: threshold %d over the 2^20 bound", ErrBadRequest, r.Threshold)
	}
	if r.TimeoutMS > int64(24*time.Hour/time.Millisecond) {
		return fmt.Errorf("%w: timeout_ms over the 24h bound", ErrBadRequest)
	}
	if r.Shards < -1 || r.Shards > 64 {
		return fmt.Errorf("%w: shards %d outside [-1, 64]", ErrBadRequest, r.Shards)
	}

	rejectParams := func(what string) error {
		if r.NCBytes != 0 || r.PCBytes != 0 || r.PCFrac != 0 || r.Threshold != 0 {
			return fmt.Errorf("%w: system %q takes no %s parameters", ErrBadRequest, r.System, what)
		}
		return nil
	}
	switch r.System {
	case "base", "origin", "NCS", "infDRAM":
		return rejectParams("cache")
	case "NCD":
		if r.PCBytes != 0 || r.PCFrac != 0 || r.Threshold != 0 {
			return fmt.Errorf("%w: system NCD takes only nc_bytes and nc_ways", ErrBadRequest)
		}
		return nil
	case "nc", "vb", "vp":
		if r.PCBytes != 0 && r.PCFrac != 0 {
			return fmt.Errorf("%w: pc_bytes and pc_frac are mutually exclusive", ErrBadRequest)
		}
		if r.Threshold != 0 && r.PCBytes == 0 && r.PCFrac == 0 {
			return fmt.Errorf("%w: threshold needs a page cache (pc_bytes or pc_frac)", ErrBadRequest)
		}
		return nil
	case "pc":
		if r.PCFrac == 0 {
			return fmt.Errorf("%w: system pc needs pc_frac", ErrBadRequest)
		}
		if r.NCBytes != 0 || r.PCBytes != 0 || r.Threshold != 0 {
			return fmt.Errorf("%w: system pc takes only pc_frac", ErrBadRequest)
		}
		return nil
	case "vxp":
		if r.PCFrac == 0 {
			return fmt.Errorf("%w: system vxp needs pc_frac", ErrBadRequest)
		}
		if r.PCBytes != 0 {
			return fmt.Errorf("%w: system vxp sizes its page cache with pc_frac, not pc_bytes", ErrBadRequest)
		}
		if r.Threshold == 0 {
			return fmt.Errorf("%w: system vxp needs a positive threshold", ErrBadRequest)
		}
		return nil
	case "":
		return fmt.Errorf("%w: missing system", ErrBadRequest)
	}
	return fmt.Errorf("%w: unknown system %q (base|origin|NCS|NCD|infDRAM|nc|vb|vp|pc|vxp)", ErrBadRequest, r.System)
}

// Fingerprint condenses the result-determining request fields into a
// stable token; submissions differing only in runtime knobs (timeout)
// share it.
func (r Request) Fingerprint() string {
	n := r.normalized()
	n.TimeoutMS = 0
	n.Shards = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", n)
	return fmt.Sprintf("%016x", h.Sum64())
}

// compile translates a validated request into the cell engine's inputs,
// starting from the scheduler's base options (geometry, latencies).
func (r Request) compile(base dsmnc.Options) (*workload.Bench, dsmnc.System, dsmnc.Options, error) {
	scale, err := parseScale(r.Scale)
	if err != nil {
		return nil, dsmnc.System{}, dsmnc.Options{}, err
	}
	opt := base
	opt.Scale = scale
	opt.Check = r.Check
	if r.Shards > 0 {
		opt.Shards = r.Shards
	} else if r.Shards < 0 {
		opt.Shards = 0 // explicit sequential, whatever the base says
	}
	bench := workload.ByName(r.Bench, scale)
	if bench == nil {
		return nil, dsmnc.System{}, dsmnc.Options{}, fmt.Errorf("%w: unknown bench %q", ErrBadRequest, r.Bench)
	}

	var sys dsmnc.System
	switch r.System {
	case "base":
		sys = dsmnc.Base()
	case "origin":
		sys = dsmnc.Origin()
	case "NCS":
		sys = dsmnc.NCS()
	case "NCD":
		sys = dsmnc.NCD()
		sys.NCBytes = r.NCBytes
	case "infDRAM":
		sys = dsmnc.InfiniteDRAM()
	case "nc":
		switch {
		case r.PCBytes > 0:
			sys = dsmnc.NCP(r.NCBytes, r.PCBytes)
		case r.PCFrac > 0:
			sys = dsmnc.NCPFrac(r.NCBytes, r.PCFrac)
		default:
			sys = dsmnc.NC(r.NCBytes)
		}
	case "vb":
		switch {
		case r.PCBytes > 0:
			sys = dsmnc.VBP(r.NCBytes, r.PCBytes)
		case r.PCFrac > 0:
			sys = dsmnc.VBPFrac(r.NCBytes, r.PCFrac)
		default:
			sys = dsmnc.VB(r.NCBytes)
		}
	case "vp":
		switch {
		case r.PCBytes > 0:
			sys = dsmnc.VPP(r.NCBytes, r.PCBytes)
		case r.PCFrac > 0:
			sys = dsmnc.VPPFrac(r.NCBytes, r.PCFrac)
		default:
			sys = dsmnc.VP(r.NCBytes)
		}
	case "pc":
		sys = dsmnc.PCOnly(r.PCFrac)
	case "vxp":
		sys = dsmnc.VXPFrac(r.NCBytes, r.PCFrac, r.Threshold)
	default:
		return nil, dsmnc.System{}, dsmnc.Options{}, fmt.Errorf("%w: unknown system %q", ErrBadRequest, r.System)
	}
	if r.Threshold > 0 && r.System != "vxp" && (r.PCBytes > 0 || r.PCFrac > 0) {
		sys.Threshold = r.Threshold
	}
	if r.NCWays > 0 {
		sys.NCWays = r.NCWays
	}
	return bench, sys, opt, nil
}
