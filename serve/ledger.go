package serve

// The job ledger: a crash-safe write-ahead log of job state
// transitions, the durable half of the scheduler. Every acknowledged
// submission appends one fsync'd, CRC-checksummed JSON line *before*
// the client sees the job ID, so a SIGKILL'd server loses nothing it
// promised: on restart the scheduler replays the ledger, repopulates
// the result cache from terminal records, and re-enqueues every
// non-terminal job under its existing idempotent ID — a recovery-induced
// re-run coalesces with client retries and, the engine being
// deterministic, produces field-identical results by construction.
//
// The file format follows the sweep journal's idioms (journal.go): one
// JSON object per line, an unterminated final line is the expected
// residue of a crash mid-append and is truncated away, while terminated
// garbage — including a line whose checksum does not match its body —
// is real corruption and fails with ErrBadLedger. On top of the journal
// the ledger adds a per-record CRC-32C and periodic atomic tmp+rename
// compaction (bounded by the scheduler's KeepResults), with the parent
// directory fsync'd after both create and rename so a machine crash
// cannot lose a renamed file either. See docs/robustness.md §5.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dsmnc"
	"dsmnc/internal/fsdir"
)

// Ledger record kinds: one per job state transition.
const (
	recAccepted   = "accepted"
	recStarted    = "started"
	recReassigned = "reassigned"
	recTerminal   = "terminal"
)

// ledgerRecord is the body of one ledger line: which job moved, where
// to, and everything recovery needs to reconstruct it. Accepted records
// carry the full canonical request plus the options fingerprint the job
// ID was derived under; terminal records carry the outcome and, for
// done jobs, the complete result.
type ledgerRecord struct {
	Kind        string        `json:"kind"`
	ID          string        `json:"id"`
	Time        time.Time     `json:"time"`
	Request     *Request      `json:"request,omitempty"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	State       State         `json:"state,omitempty"`
	Error       string        `json:"error,omitempty"`
	Result      *dsmnc.Result `json:"result,omitempty"`
	// Attempt is the cumulative lease-loss count of a reassigned
	// record, so a job's spent retry budget survives a restart.
	Attempt int `json:"attempt,omitempty"`
}

// ledgerLine is the on-disk framing: the record's raw JSON bytes plus a
// CRC-32C over exactly those bytes, so a torn or bit-flipped record is
// detected before its content is believed.
type ledgerLine struct {
	Sum string          `json:"sum"`
	Rec json.RawMessage `json:"rec"`
}

// ledgerCRC is the Castagnoli table shared by encode and verify.
var ledgerCRC = crc32.MakeTable(crc32.Castagnoli)

// crashHook, when armed, is invoked at the named points around the
// ledger's durability transitions. The kill-torture suite sets it (via
// dsmserved's DSMNC_SERVE_CRASH environment variable) to SIGKILL the
// process at one exact point; it is nil in production.
var crashHook func(point string)

// SetCrashHook arms fn as the ledger crash-point hook. Call it before
// the scheduler starts; it is not safe to change concurrently with
// appends. Passing nil disarms it.
func SetCrashHook(fn func(point string)) { crashHook = fn }

// CrashPoints names every point the kill-torture suite can arm: around
// each append (before the write, between write and fsync, after fsync)
// and around compaction's atomic rename.
var CrashPoints = []string{
	"ledger.append.pre-write",
	"ledger.append.post-write",
	"ledger.append.post-sync",
	"ledger.compact.pre-rename",
	"ledger.compact.post-rename",
}

func crashPoint(p string) {
	if crashHook != nil {
		crashHook(p)
	}
}

// recoveredJob is one job's folded state after replaying the ledger:
// terminal jobs carry their outcome and result, non-terminal jobs the
// request to re-enqueue.
type recoveredJob struct {
	id          string
	req         Request
	fingerprint string
	state       State // StateQueued when the job must re-run
	errMsg      string
	res         *dsmnc.Result
	queued      time.Time
	started     time.Time
	finished    time.Time
	attempts    int // lease losses recorded before the crash
	seq         int // file order, for stable recovery ordering
}

// Ledger is the write-ahead log handle. It is safe for the concurrent
// appends of the scheduler's worker pool.
type Ledger struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records int // lines currently in the file, for growth accounting

	byID  map[string]*recoveredJob
	order []string // first-accepted order of byID
}

// OpenLedger opens (creating if needed) the ledger at path and replays
// it: an unterminated final line — the residue of a crash mid-append —
// is truncated away, terminated garbage fails with ErrBadLedger. A
// stale compaction temp file from a crash mid-compaction is removed.
// The parent directory is fsync'd so a freshly created ledger survives
// a machine crash.
func OpenLedger(path string) (*Ledger, error) {
	// A crash between writing the compaction temp file and renaming it
	// leaves the temp behind; the ledger proper is still authoritative.
	os.Remove(path + ledgerTmpSuffix)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := fsdir.Sync(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	l := &Ledger{f: f, path: path, byID: map[string]*recoveredJob{}}
	if err := l.load(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// ledgerTmpSuffix names the compaction scratch file beside the ledger.
const ledgerTmpSuffix = ".tmp"

// Path returns the ledger's file path.
func (l *Ledger) Path() string { return l.path }

// Records returns how many intact records the ledger currently holds.
func (l *Ledger) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Close releases the ledger file.
func (l *Ledger) Close() error { return l.f.Close() }

// load replays the file into the folded per-job state and positions the
// file for appending, truncating away a torn final record.
func (l *Ledger) load() error {
	recs, good, err := parseLedger(bufio.NewReaderSize(l.f, 1<<16), l.path)
	if err != nil {
		return err
	}
	end, serr := l.f.Seek(0, io.SeekEnd)
	if serr != nil {
		return serr
	}
	if end > good {
		// Unterminated or short-read tail: the previous run died inside
		// an append. Drop the fragment so the next append starts on a
		// record boundary; the job it described simply replays.
		if terr := l.f.Truncate(good); terr != nil {
			return terr
		}
	}
	if _, serr := l.f.Seek(good, io.SeekStart); serr != nil {
		return serr
	}
	for _, rec := range recs {
		l.fold(rec)
	}
	l.records = len(recs)
	return nil
}

// parseLedger decodes every intact record from r. It returns the
// records, the byte offset just past the last terminated-and-valid line
// (everything beyond it is a torn tail for the caller to truncate), and
// an ErrBadLedger-wrapped error for a *terminated* line that is
// malformed — bad JSON, a checksum mismatch, or an impossible record.
// It never panics, whatever the bytes (FuzzLedger).
func parseLedger(br *bufio.Reader, path string) (recs []ledgerRecord, good int64, err error) {
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil {
			if rerr != io.EOF {
				return nil, 0, rerr
			}
			// No trailing newline: torn tail, ends the replay cleanly.
			return recs, good, nil
		}
		rec, perr := parseLedgerLine(line)
		if perr != nil {
			return nil, 0, fmt.Errorf("%w: %s: record at byte %d: %v", ErrBadLedger, path, good, perr)
		}
		recs = append(recs, rec)
		good += int64(len(line))
	}
}

// parseLedgerLine decodes and verifies one terminated ledger line.
func parseLedgerLine(line []byte) (ledgerRecord, error) {
	var ll ledgerLine
	if err := json.Unmarshal(line, &ll); err != nil {
		return ledgerRecord{}, err
	}
	if got := fmt.Sprintf("%08x", crc32.Checksum(ll.Rec, ledgerCRC)); got != ll.Sum {
		return ledgerRecord{}, fmt.Errorf("checksum %s does not match body crc %s", ll.Sum, got)
	}
	var rec ledgerRecord
	if err := json.Unmarshal(ll.Rec, &rec); err != nil {
		return ledgerRecord{}, err
	}
	if rec.ID == "" {
		return ledgerRecord{}, fmt.Errorf("record has no job id")
	}
	switch rec.Kind {
	case recAccepted:
		if rec.Request == nil || rec.Fingerprint == "" {
			return ledgerRecord{}, fmt.Errorf("accepted record is missing its request or fingerprint")
		}
	case recStarted:
	case recReassigned:
		if rec.Attempt < 1 {
			return ledgerRecord{}, fmt.Errorf("reassigned record carries non-positive attempt %d", rec.Attempt)
		}
	case recTerminal:
		if !rec.State.Terminal() {
			return ledgerRecord{}, fmt.Errorf("terminal record carries non-terminal state %q", rec.State)
		}
	default:
		return ledgerRecord{}, fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	return rec, nil
}

// fold merges one record into the per-job recovered state. An accepted
// record (re)starts a job's history — that is how a resubmission of an
// evicted ID reads back correctly; started and terminal records land on
// the job they name, and orphans (whose accepted record was compacted
// away mid-corruption) are dropped rather than invented.
func (l *Ledger) fold(rec ledgerRecord) {
	switch rec.Kind {
	case recAccepted:
		j, ok := l.byID[rec.ID]
		if !ok {
			j = &recoveredJob{id: rec.ID, seq: len(l.order)}
			l.byID[rec.ID] = j
			l.order = append(l.order, rec.ID)
		}
		*j = recoveredJob{
			id: rec.ID, req: *rec.Request, fingerprint: rec.Fingerprint,
			state: StateQueued, queued: rec.Time, seq: j.seq,
		}
	case recStarted:
		if j, ok := l.byID[rec.ID]; ok && !j.state.Terminal() {
			j.state = StateRunning
			j.started = rec.Time
		}
	case recReassigned:
		if j, ok := l.byID[rec.ID]; ok && !j.state.Terminal() {
			// The lease of the recorded attempt was lost; the job is
			// back in the queue with that much retry budget spent.
			j.state = StateQueued
			if rec.Attempt > j.attempts {
				j.attempts = rec.Attempt
			}
		}
	case recTerminal:
		if j, ok := l.byID[rec.ID]; ok {
			j.state = rec.State
			j.errMsg = rec.Error
			j.res = rec.Result
			j.finished = rec.Time
		}
	}
}

// jobs returns the folded per-job state in first-accepted order. The
// scheduler consumes it once, at recovery.
func (l *Ledger) jobs() []*recoveredJob {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*recoveredJob, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, l.byID[id])
	}
	return out
}

// encodeLedgerLine frames one record: body JSON, CRC over exactly those
// bytes, one line.
func encodeLedgerLine(rec ledgerRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(ledgerLine{
		Sum: fmt.Sprintf("%08x", crc32.Checksum(body, ledgerCRC)),
		Rec: body,
	})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// append durably writes one record: a single checksummed JSON line,
// fsync'd before the caller proceeds. A crash between write and sync
// leaves a tail the next open truncates.
func (l *Ledger) append(rec ledgerRecord) error {
	line, err := encodeLedgerLine(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	crashPoint("ledger.append.pre-write")
	if _, err := l.f.Write(line); err != nil {
		return err
	}
	crashPoint("ledger.append.post-write")
	if err := l.f.Sync(); err != nil {
		return err
	}
	crashPoint("ledger.append.post-sync")
	l.records++
	return nil
}

// accepted records a job's admission: the full canonical request and
// the options fingerprint its idempotent ID was derived under. It must
// return before the submission is acknowledged.
func (l *Ledger) accepted(id string, req Request, fingerprint string, t time.Time) error {
	return l.append(ledgerRecord{Kind: recAccepted, ID: id, Time: t, Request: &req, Fingerprint: fingerprint})
}

// started records a job moving onto a worker. Advisory: losing it costs
// nothing — the job replays from accepted and re-runs to the same
// result.
func (l *Ledger) started(id string, t time.Time) error {
	return l.append(ledgerRecord{Kind: recStarted, ID: id, Time: t})
}

// reassigned records a lease loss: the job is back in the queue with
// attempt losses spent against its retry budget. Durable so a restart
// cannot grant a crashing job a fresh budget and retry it forever.
func (l *Ledger) reassigned(id string, attempt int, t time.Time) error {
	return l.append(ledgerRecord{Kind: recReassigned, ID: id, Time: t, Attempt: attempt})
}

// terminal records a job's outcome; done jobs carry their full result
// so a restart repopulates the cache without re-running them.
func (l *Ledger) terminal(id string, state State, errMsg string, res *dsmnc.Result, t time.Time) error {
	return l.append(ledgerRecord{Kind: recTerminal, ID: id, Time: t, State: state, Error: errMsg, Result: res})
}

// compact atomically replaces the ledger with just the given records —
// the scheduler passes one accepted (plus terminal) pair per live job,
// so growth stays bounded by KeepResults. Write to a temp file, fsync,
// rename over the ledger, fsync the directory; a crash at any point
// leaves either the old or the new file intact, never a mix.
func (l *Ledger) compact(recs []ledgerRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp := l.path + ledgerTmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	for _, rec := range recs {
		line, err := encodeLedgerLine(rec)
		if err != nil {
			return abort(err)
		}
		if _, err := w.Write(line); err != nil {
			return abort(err)
		}
	}
	if err := w.Flush(); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	crashPoint("ledger.compact.pre-rename")
	if err := os.Rename(tmp, l.path); err != nil {
		return abort(err)
	}
	crashPoint("ledger.compact.post-rename")
	if err := fsdir.Sync(filepath.Dir(l.path)); err != nil {
		// The rename itself succeeded; the new file is the ledger and f
		// is its handle. Report the durability gap but keep going.
		l.swapFile(f, len(recs))
		return err
	}
	l.swapFile(f, len(recs))
	return nil
}

// swapFile retires the pre-compaction file handle for the freshly
// renamed one, positioned at its end for the next append.
func (l *Ledger) swapFile(f *os.File, records int) {
	old := l.f
	l.f = f
	l.records = records
	old.Close()
}
