package serve

// Tests and fuzzers for the fleet wire codec: valid documents round-trip
// through Encode/Parse unchanged, every malformed input is an
// ErrBadWire-wrapped error, and — the fuzzers' contract — the decoders
// never panic, whatever the bytes.

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"dsmnc"
)

func validWireRequest() WireRequest {
	return WireRequest{
		ID:          "0123456789abcdef",
		Attempt:     1,
		Epoch:       3,
		Fingerprint: "fedcba9876543210",
		Request:     Request{Bench: "FFT", System: "nc", NCBytes: 16384},
	}
}

func TestWireRequestRoundTrip(t *testing.T) {
	want := validWireRequest()
	data, err := want.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := ParseWireRequest(data)
	if err != nil {
		t.Fatalf("ParseWireRequest: %v", err)
	}
	// Parse normalizes the embedded request; normalize the expectation
	// the same way before comparing.
	want.Request = want.Request.normalized()
	if got != want {
		t.Fatalf("round trip changed the dispatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestWireRequestRejects(t *testing.T) {
	enc := func(mut func(*WireRequest)) []byte {
		wr := validWireRequest()
		mut(&wr)
		data, err := wr.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("\x00\xff\xfe")},
		{"empty", nil},
		{"not an object", []byte(`[1,2,3]`)},
		{"unknown field", []byte(`{"id":"0123456789abcdef","attempt":1,"epoch":1,"fingerprint":"fedcba9876543210","request":{"bench":"FFT","system":"base"},"extra":1}`)},
		{"trailing data", append(enc(func(wr *WireRequest) {}), []byte(`{"id":"x"}`)...)},
		{"oversized", []byte(`{"id":"` + strings.Repeat("a", MaxWireRequestBytes) + `"}`)},
		{"short id", enc(func(wr *WireRequest) { wr.ID = "abc" })},
		{"uppercase id", enc(func(wr *WireRequest) { wr.ID = "0123456789ABCDEF" })},
		{"non-hex fingerprint", enc(func(wr *WireRequest) { wr.Fingerprint = "zzzzzzzzzzzzzzzz" })},
		{"zero attempt", enc(func(wr *WireRequest) { wr.Attempt = 0 })},
		{"negative attempt", enc(func(wr *WireRequest) { wr.Attempt = -1 })},
		{"huge attempt", enc(func(wr *WireRequest) { wr.Attempt = maxWireAttempt + 1 })},
		{"zero epoch", enc(func(wr *WireRequest) { wr.Epoch = 0 })},
		{"bad embedded request", enc(func(wr *WireRequest) { wr.Request.Bench = "NoSuchBench" })},
		{"out-of-range request field", enc(func(wr *WireRequest) { wr.Request.NCBytes = -5 })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseWireRequest(tc.data); !errors.Is(err, ErrBadWire) {
				t.Fatalf("want ErrBadWire, got %v", err)
			}
		})
	}
}

func TestWireResultStateMachine(t *testing.T) {
	res := &dsmnc.Result{System: "nc", Bench: "FFT", Refs: 100}
	ok := []WireResult{
		{ID: "0123456789abcdef", Epoch: 1, State: StateQueued},
		{ID: "0123456789abcdef", Epoch: 2, State: StateRunning},
		{ID: "0123456789abcdef", Epoch: 2, State: StateDone, Result: res},
		{ID: "0123456789abcdef", Epoch: 2, State: StateFailed, Error: "engine exploded"},
		{ID: "0123456789abcdef", Epoch: 2, State: StateCanceled, Error: "context canceled"},
		{ID: "0123456789abcdef", Epoch: 2, State: StateCanceled},
	}
	for _, wr := range ok {
		data, err := wr.Encode()
		if err != nil {
			t.Fatalf("Encode(%v): %v", wr.State, err)
		}
		got, err := ParseWireResult(data)
		if err != nil {
			t.Fatalf("ParseWireResult(%v): %v", wr.State, err)
		}
		if got.State != wr.State || got.ID != wr.ID || got.Epoch != wr.Epoch {
			t.Fatalf("round trip changed the result: got %+v want %+v", got, wr)
		}
		if wr.Result != nil && (got.Result == nil || got.Result.Refs != wr.Result.Refs) {
			t.Fatalf("round trip lost the payload: got %+v", got.Result)
		}
	}
	bad := []WireResult{
		{ID: "0123456789abcdef", Epoch: 1, State: StateQueued, Error: "noise"},
		{ID: "0123456789abcdef", Epoch: 1, State: StateRunning, Result: res},
		{ID: "0123456789abcdef", Epoch: 1, State: StateDone},
		{ID: "0123456789abcdef", Epoch: 1, State: StateDone, Result: res, Error: "and an error"},
		{ID: "0123456789abcdef", Epoch: 1, State: StateDone, Result: &dsmnc.Result{Refs: -1}},
		{ID: "0123456789abcdef", Epoch: 1, State: StateFailed},
		{ID: "0123456789abcdef", Epoch: 1, State: StateFailed, Result: res, Error: "both"},
		{ID: "0123456789abcdef", Epoch: 1, State: StateCanceled, Result: res},
		{ID: "0123456789abcdef", Epoch: 1, State: State("exploded")},
		{ID: "nope", Epoch: 1, State: StateQueued},
		{ID: "0123456789abcdef", Epoch: 0, State: StateQueued},
	}
	for _, wr := range bad {
		data, err := json.Marshal(wr)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if _, err := ParseWireResult(data); !errors.Is(err, ErrBadWire) {
			t.Fatalf("%s (%+v): want ErrBadWire, got %v", wr.State, wr, err)
		}
	}
}

func TestWireReady(t *testing.T) {
	rd := WireReady{Ready: true, Reason: "ok", Slots: 8, Busy: 3, Queued: 2}
	data, err := rd.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := ParseWireReady(data)
	if err != nil {
		t.Fatalf("ParseWireReady: %v", err)
	}
	if got != rd {
		t.Fatalf("round trip changed the document: got %+v want %+v", got, rd)
	}
	for _, bad := range []string{
		`{"ready":true,"reason":"ok","slots":-1,"busy":0,"queued":0}`,
		`{"ready":true,"reason":"ok","slots":0,"busy":-2,"queued":0}`,
		`{"ready":true,"reason":"ok","slots":2097152,"busy":0,"queued":0}`,
		`{"ready":"yes"}`,
		`not json`,
	} {
		if _, err := ParseWireReady([]byte(bad)); !errors.Is(err, ErrBadWire) {
			t.Fatalf("%s: want ErrBadWire, got %v", bad, err)
		}
	}
}

// FuzzWireRequest: the dispatch decoder never panics and classifies
// every input as either a valid, re-encodable dispatch or ErrBadWire.
func FuzzWireRequest(f *testing.F) {
	if valid, err := validWireRequest().Encode(); err == nil {
		f.Add(valid)
	}
	seeds := []string{
		`{"id":"0123456789abcdef","attempt":1,"epoch":1,"fingerprint":"fedcba9876543210","request":{"bench":"FFT","system":"base"}}`,
		`{"id":"0123456789abcdef","attempt":0,"epoch":0,"fingerprint":"x","request":{}}`,
		`{"id":"0123456789abcdef"}`,
		`{"attempt":1e99}`,
		`[{"id":"0123456789abcdef"}]`,
		`{}`,
		`{"id":"0123456789abcdef","attempt":1,"epoch":1,"fingerprint":"fedcba9876543210","request":{"bench":"FFT","system":"base"}}tail`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		wr, err := ParseWireRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadWire) {
				t.Fatalf("non-sentinel error %v (%[1]T)", err)
			}
			return
		}
		reenc, err := wr.Encode()
		if err != nil {
			t.Fatalf("valid dispatch fails to re-encode: %v", err)
		}
		again, err := ParseWireRequest(reenc)
		if err != nil {
			t.Fatalf("re-encoded dispatch fails to re-parse: %v", err)
		}
		if again != wr {
			t.Fatalf("re-encode is not a fixed point:\n got %+v\nwant %+v", again, wr)
		}
	})
}

// FuzzWireResult: the poll-answer decoder never panics; garbage is
// ErrBadWire; valid answers re-encode to a parseable fixed point.
func FuzzWireResult(f *testing.F) {
	seeds := []string{
		`{"id":"0123456789abcdef","epoch":1,"state":"queued"}`,
		`{"id":"0123456789abcdef","epoch":2,"state":"running"}`,
		`{"id":"0123456789abcdef","epoch":2,"state":"done","result":{"system":"nc","bench":"FFT","refs":10}}`,
		`{"id":"0123456789abcdef","epoch":2,"state":"failed","error":"boom"}`,
		`{"id":"0123456789abcdef","epoch":2,"state":"canceled"}`,
		`{"id":"0123456789abcdef","epoch":2,"state":"done"}`,
		`{"id":"0123456789abcdef","epoch":2,"state":"done","result":{"refs":-1}}`,
		`{"id":"0123456789abcdef","epoch":0,"state":"queued"}`,
		`{"state":"queued"}`,
		`{}`,
		`null`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		wr, err := ParseWireResult(data)
		if err != nil {
			if !errors.Is(err, ErrBadWire) {
				t.Fatalf("non-sentinel error %v (%[1]T)", err)
			}
			return
		}
		reenc, err := wr.Encode()
		if err != nil {
			t.Fatalf("valid result fails to re-encode: %v", err)
		}
		if _, err := ParseWireResult(reenc); err != nil {
			t.Fatalf("re-encoded result fails to re-parse: %v", err)
		}
	})
}
