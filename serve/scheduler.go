package serve

// The job scheduler: a bounded FIFO queue feeding a fixed worker pool.
// Submissions are deduplicated by an idempotent job ID (the request
// fingerprint crossed with the options fingerprint the sweep journal
// uses), results are cached in a bounded map, full queues shed with
// ErrBusy instead of growing, and Drain stops intake and settles every
// job — forcibly cancelling what remains once its context expires — so
// a SIGTERM'd server exits with zero leaked goroutines.

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dsmnc"
	"dsmnc/telemetry"
	"dsmnc/workload"
)

// State is a job's lifecycle position.
type State string

// Job states. A job moves queued -> running -> {done, failed}, or to
// canceled from either live state.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Status is the observable account of one job.
type Status struct {
	ID     string `json:"id"`
	Bench  string `json:"bench"`
	System string `json:"system"`
	State  State  `json:"state"`
	// Error carries the failure (or cancellation) reason of a
	// terminal, unsuccessful job.
	Error    string    `json:"error,omitempty"`
	Queued   time.Time `json:"queued"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Config sizes a Scheduler. The zero value is usable: NumCPU workers, a
// 256-deep queue, no default deadline, 1024 cached results, and the
// paper's default machine options.
type Config struct {
	// Workers is the pool size; 0 means runtime.NumCPU().
	Workers int
	// QueueDepth bounds the FIFO queue; submissions beyond it shed
	// with ErrBusy. 0 means 256.
	QueueDepth int
	// DefaultTimeout bounds jobs that do not carry their own
	// timeout_ms; 0 means unbounded.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts; 0 means uncapped.
	MaxTimeout time.Duration
	// KeepResults bounds the terminal-job cache: beyond it the oldest
	// finished jobs (and their results) are evicted, and a resubmission
	// of an evicted ID re-runs. 0 means 1024.
	KeepResults int
	// Options are the base machine options every job starts from
	// (geometry, processor caches, latencies); the request sets Scale
	// and Check on top. The zero value means dsmnc.DefaultOptions().
	// Single-run instruments (Sampler, EventTrace) and sweep journals
	// are rejected — jobs run concurrently.
	Options dsmnc.Options
	// Progress, when set, aggregates reference and cell counts across
	// all served jobs (register it on a telemetry registry under a job
	// label; see Progress.RegisterMetricsLabeled).
	Progress *dsmnc.Progress
}

// job is the scheduler's record of one submission.
type job struct {
	id    string
	req   Request
	bench *workload.Bench
	sys   dsmnc.System
	opt   dsmnc.Options

	// Mutable state, guarded by the scheduler's mu.
	state    State
	err      error
	res      dsmnc.Result
	queued   time.Time
	started  time.Time
	finished time.Time
	subs     []chan Status

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on reaching a terminal state
}

// statusLocked snapshots the job's status; callers hold the scheduler's
// mu.
func (j *job) statusLocked() Status {
	st := Status{
		ID:     j.id,
		Bench:  j.req.Bench,
		System: j.sys.Name,
		State:  j.state,
		Queued: j.queued, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Scheduler runs submitted jobs on a bounded worker pool. Create one
// with New; all methods are safe for concurrent use.
type Scheduler struct {
	cfg   Config
	queue chan *job

	mu        sync.Mutex
	jobs      map[string]*job
	doneOrder []string // terminal job IDs, oldest first, for eviction
	draining  bool

	wg sync.WaitGroup // worker pool

	inflight  atomic.Int64
	submitted atomic.Int64
	deduped   atomic.Int64
	shed      atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64

	runHist  *telemetry.Histogram // run latency, seconds
	waitHist *telemetry.Histogram // queue wait, seconds

	// runFn executes one job; tests swap it to drive the scheduler
	// with synthetic work.
	runFn func(ctx context.Context, j *job) (dsmnc.Result, error)
}

// New starts a scheduler: the worker pool is live and accepting
// submissions until Drain.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.KeepResults <= 0 {
		cfg.KeepResults = 1024
	}
	if cfg.Options.Geometry.Clusters == 0 {
		cfg.Options = dsmnc.DefaultOptions()
	}
	if cfg.Options.Sampler != nil || cfg.Options.EventTrace != nil {
		return nil, fmt.Errorf("%w: Sampler/EventTrace are single-run instruments; served jobs run concurrently",
			dsmnc.ErrConfig)
	}
	if cfg.Options.Journal != nil {
		return nil, fmt.Errorf("%w: the sweep journal is not a serving result store", dsmnc.ErrConfig)
	}
	cfg.Options.Progress = cfg.Progress

	runHist, err := telemetry.NewHistogram(telemetry.DefaultLatencyBuckets()...)
	if err != nil {
		return nil, err
	}
	waitHist, err := telemetry.NewHistogram(telemetry.DefaultLatencyBuckets()...)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     map[string]*job{},
		runHist:  runHist,
		waitHist: waitHist,
	}
	s.runFn = func(ctx context.Context, j *job) (dsmnc.Result, error) {
		return dsmnc.RunCell(ctx, "serve/"+j.id, j.bench, j.sys, j.opt)
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// jobID derives the idempotent job identity: the canonical request
// fingerprint crossed with the options fingerprint the sweep journal
// stores with every cell, so identical work coalesces and different
// work never does.
func jobID(req Request, opt dsmnc.Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s", req.Fingerprint(), opt.Fingerprint())
	return fmt.Sprintf("%016x", h.Sum64())
}

// Submit validates and enqueues one job. Submissions are idempotent: a
// request whose job is already queued, running or finished returns that
// job's current status without enqueueing anything. A full queue sheds
// with ErrBusy; a draining scheduler with ErrDraining (which wraps
// ErrBusy). Malformed requests fail with ErrBadRequest.
func (s *Scheduler) Submit(req Request) (Status, error) {
	req = req.normalized()
	if err := req.validate(); err != nil {
		return Status{}, err
	}
	bench, sys, opt, err := req.compile(s.cfg.Options)
	if err != nil {
		return Status{}, err
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	opt.CellTimeout = timeout
	id := jobID(req, opt)

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[id]; ok {
		s.deduped.Add(1)
		return existing.statusLocked(), nil
	}
	if s.draining {
		s.shed.Add(1)
		return Status{}, ErrDraining
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id: id, req: req, bench: bench, sys: sys, opt: opt,
		state: StateQueued, queued: time.Now(),
		ctx: ctx, cancel: cancel,
		done: make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		s.shed.Add(1)
		return Status{}, ErrBusy
	}
	s.jobs[id] = j
	s.submitted.Add(1)
	if p := s.cfg.Progress; p != nil {
		p.CellsTotal.Add(1)
	}
	return j.statusLocked(), nil
}

// worker drains the queue until Drain closes it.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one dequeued job through the cell engine and settles its
// terminal state.
func (s *Scheduler) run(j *job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Canceled while waiting; already settled.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	s.notifyLocked(j)
	s.mu.Unlock()
	s.inflight.Add(1)
	s.waitHist.Observe(j.started.Sub(j.queued).Seconds())

	res, err := s.runFn(j.ctx, j)

	s.inflight.Add(-1)
	s.mu.Lock()
	j.finished = time.Now()
	s.runHist.Observe(j.finished.Sub(j.started).Seconds())
	switch {
	case err == nil:
		j.state = StateDone
		j.res = res
		s.completed.Add(1)
	case context.Cause(j.ctx) == context.Canceled:
		// The job's own context was canceled (Cancel or a forced
		// drain), as opposed to a deadline or a simulation failure.
		j.state = StateCanceled
		j.err = err
		s.canceled.Add(1)
	default:
		j.state = StateFailed
		j.err = err
		s.failed.Add(1)
	}
	s.settleLocked(j)
	s.mu.Unlock()
}

// settleLocked finalizes a job that just reached a terminal state:
// progress accounting, subscriber notification, done signal, and
// eviction of the oldest finished jobs beyond the KeepResults bound.
// Callers hold mu and have set state/finished already.
func (s *Scheduler) settleLocked(j *job) {
	if p := s.cfg.Progress; p != nil {
		p.CellsDone.Add(1)
		if j.state == StateFailed {
			p.CellsFailed.Add(1)
		}
	}
	j.cancel() // release the context's resources
	s.notifyLocked(j)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)

	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.KeepResults {
		oldest := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, oldest)
	}
}

// notifyLocked pushes the job's current status to its watchers; the
// channel capacity covers every possible transition, so the send never
// blocks.
func (s *Scheduler) notifyLocked(j *job) {
	st := j.statusLocked()
	for _, ch := range j.subs {
		select {
		case ch <- st:
		default: // watcher fell behind; it will still see the close
		}
	}
}

// Status returns a job's current status.
func (s *Scheduler) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.statusLocked(), nil
}

// Result returns a job's result. The Result value is only meaningful
// when the returned status is StateDone; a live or unsuccessful job
// returns its status with a zero Result.
func (s *Scheduler) Result(id string) (dsmnc.Result, Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return dsmnc.Result{}, Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.res, j.statusLocked(), nil
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns that final status.
func (s *Scheduler) Wait(ctx context.Context, id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	select {
	case <-j.done:
		return s.Status(id)
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// Watch returns a channel of the job's status updates: its current
// status immediately, then one per transition; the channel closes after
// the terminal status is delivered. The HTTP stream endpoint is a thin
// rendering of it.
func (s *Scheduler) Watch(id string) (<-chan Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	// Capacity covers the initial status plus every remaining
	// transition, so notifyLocked never drops for a draining reader.
	ch := make(chan Status, 4)
	ch <- j.statusLocked()
	if j.state.Terminal() {
		close(ch)
		return ch, nil
	}
	j.subs = append(j.subs, ch)
	return ch, nil
}

// Cancel stops a job: a queued job settles immediately as canceled, a
// running one has its context canceled and settles when the engine
// notices (it polls off the hot path). Cancelling a terminal job is a
// no-op.
func (s *Scheduler) Cancel(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = time.Now()
		s.canceled.Add(1)
		s.settleLocked(j)
	case StateRunning:
		j.cancel()
	}
	return j.statusLocked(), nil
}

// Drain shuts the scheduler down gracefully: intake stops (submissions
// shed with ErrDraining), queued and running jobs are given until ctx
// ends to finish, then the stragglers are canceled and awaited. When
// Drain returns, every job is settled and every worker goroutine has
// exited; the error is ctx's if the deadline forced cancellations.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	wasDraining := s.draining
	if !wasDraining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	settled := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		return nil
	case <-ctx.Done():
	}
	// Deadline: cancel everything still live. Queued jobs settle here;
	// running ones settle in their worker as the engine observes the
	// canceled context.
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.state {
		case StateQueued:
			j.state = StateCanceled
			j.err = context.Canceled
			j.finished = time.Now()
			s.canceled.Add(1)
			s.settleLocked(j)
		case StateRunning:
			j.cancel()
		}
	}
	s.mu.Unlock()
	<-settled
	return ctx.Err()
}

// Draining reports whether the scheduler has stopped accepting work.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns the current number of waiting jobs and the queue's
// bound.
func (s *Scheduler) QueueDepth() (depth, capacity int) {
	return len(s.queue), s.cfg.QueueDepth
}
