package serve

// The job scheduler: a bounded FIFO queue feeding a fixed worker pool.
// Submissions are deduplicated by an idempotent job ID (the request
// fingerprint crossed with the options fingerprint the sweep journal
// uses), results are cached in a bounded map, full queues shed with
// ErrBusy instead of growing, and Drain stops intake and settles every
// job — forcibly cancelling what remains once its context expires — so
// a SIGTERM'd server exits with zero leaked goroutines.
//
// Execution sits behind the Executor interface (executor.go): each
// dequeued job is dispatched to an executor fault domain under a
// heartbeat-renewed lease. A lease that expires without renewal —
// worker crash, stall, dropped result — is revoked by the monitor and
// the job reassigned with a bounded retry budget, exponential backoff
// and deterministic seeded jitter; an executor that loses K leases in a
// row is quarantined by the circuit breaker while the scheduler keeps
// serving on the healthy remainder. Late or duplicate results from a
// revoked attempt are discarded by an epoch guard, so a job completes
// exactly once. The chaos harness (chaos.go, make chaos-smoke) proves
// all of it under seeded fault injection.
//
// With a Ledger attached the scheduler is crash-safe: every transition
// is journaled (acknowledged jobs durably, before the client sees the
// ID), startup replays the ledger — terminal jobs repopulate the result
// cache, non-terminal jobs re-enqueue under their existing idempotent
// IDs with their reassignment counts intact — and a watchdog
// force-fails jobs that overrun their deadline by WatchdogFactor
// without settling. The kill-torture suite (cmd/dsmserved, make
// crash-smoke) SIGKILLs the real binary at every ledger crash point and
// requires zero lost acknowledged jobs, zero duplicated completions,
// and recovered results field-identical to the golden corpus.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dsmnc"
	"dsmnc/telemetry"
	"dsmnc/workload"
)

// State is a job's lifecycle position.
type State string

// Job states. A job moves queued -> running -> {done, failed}, or to
// canceled from either live state; a running job whose lease is lost
// moves back to queued until its retry budget runs out.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Status is the observable account of one job.
type Status struct {
	ID     string `json:"id"`
	Bench  string `json:"bench"`
	System string `json:"system"`
	State  State  `json:"state"`
	// Error carries the failure (or cancellation) reason of a
	// terminal, unsuccessful job.
	Error string `json:"error,omitempty"`
	// Attempt counts dispatches: 1 on the first run, higher after
	// lease-loss reassignments. Executor names the fault domain of the
	// latest attempt.
	Attempt  int       `json:"attempt,omitempty"`
	Executor string    `json:"executor,omitempty"`
	Queued   time.Time `json:"queued"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// maxRetryBackoff caps the exponential reassignment backoff.
const maxRetryBackoff = time.Minute

// Config sizes a Scheduler. The zero value is usable: NumCPU workers, a
// 256-deep queue, no default deadline, 1024 cached results, one local
// executor under 15s leases with 2 retries, and the paper's default
// machine options.
type Config struct {
	// Workers is the pool size; 0 means runtime.NumCPU().
	Workers int
	// QueueDepth bounds the FIFO queue; submissions beyond it shed
	// with ErrBusy. 0 means 256.
	QueueDepth int
	// DefaultTimeout bounds jobs that do not carry their own
	// timeout_ms; 0 means unbounded.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts; 0 means uncapped.
	MaxTimeout time.Duration
	// KeepResults bounds the terminal-job cache: beyond it the oldest
	// finished jobs (and their results) are evicted, and a resubmission
	// of an evicted ID re-runs. 0 means 1024.
	KeepResults int
	// Options are the base machine options every job starts from
	// (geometry, processor caches, latencies); the request sets Scale
	// and Check on top. The zero value means dsmnc.DefaultOptions().
	// Single-run instruments (Sampler, EventTrace) and sweep journals
	// are rejected — jobs run concurrently.
	Options dsmnc.Options
	// Progress, when set, aggregates reference and cell counts across
	// all served jobs (register it on a telemetry registry under a job
	// label; see Progress.RegisterMetricsLabeled).
	Progress *dsmnc.Progress
	// Ledger, when set, makes the scheduler crash-safe: accepted jobs
	// are durably journaled before the submission is acknowledged, and
	// New replays the ledger — restoring terminal results and
	// re-enqueueing unfinished jobs under their existing IDs. Open one
	// with OpenLedger; the scheduler owns its lifecycle from here to
	// Drain. The fsync per transition serializes under the scheduler's
	// lock: a deliberate trade — jobs are whole simulations, and an
	// acknowledgement must mean durable.
	Ledger *Ledger
	// WatchdogFactor force-fails a running job (with ErrWatchdog) once
	// it has run WatchdogFactor × its deadline without settling —
	// insurance against an engine that stops honoring its context.
	// 0 disables the watchdog; jobs without a deadline are never
	// watchdog-killed.
	WatchdogFactor float64
	// WatchdogTick is how often the watchdog scans running jobs;
	// 0 means 250ms.
	WatchdogTick time.Duration
	// CompactEvery bounds ledger growth: after this many terminal
	// records the ledger is rewritten (atomic tmp+rename) to just the
	// live jobs' records, so its size tracks KeepResults instead of
	// history. 0 means 2×KeepResults.
	CompactEvery int

	// Executors are the fault domains jobs dispatch to, round-robin
	// among the healthy ones. Nil means one in-process Local executor.
	// Names must be unique.
	Executors []Executor
	// HashRouting routes jobs to executors by consistent-hashing their
	// idempotent ID over the executor names (128 virtual nodes per
	// name) instead of round-robin: duplicate submissions land on the
	// same node fleet-wide, a node joining or leaving moves only ~1/N
	// of the fingerprints, and any coordinator replica configured with
	// the same names routes identically. Unhealthy or just-lost domains
	// fall back along the ring walk; the quarantine breaker and retry
	// budget apply unchanged.
	HashRouting bool
	// LeaseTTL is how long a running attempt may go without a
	// heartbeat before its lease is revoked and the job reassigned.
	// 0 means 15s; negative disables leases (the watchdog is then the
	// only supervisor).
	LeaseTTL time.Duration
	// LeaseTick is how often the monitor scans running leases;
	// 0 means LeaseTTL/8 clamped to [5ms, 1s].
	LeaseTick time.Duration
	// MaxRetries bounds reassignments after lease losses: a job may be
	// dispatched at most MaxRetries+1 times before it settles failed
	// with ErrLeaseLost. 0 means 2; negative means no retries.
	MaxRetries int
	// RetryBackoff is the base delay before a reassigned job re-enters
	// the queue; it doubles per consecutive loss (capped at 1min) and
	// is jittered over [d/2, d] by a deterministic seeded RNG.
	// 0 means 250ms; negative requeues immediately.
	RetryBackoff time.Duration
	// RetrySeed seeds the backoff jitter RNG, so a given seed yields a
	// reproducible reassignment schedule. 0 means 1.
	RetrySeed int64
	// QuarantineAfter is the circuit breaker's threshold: an executor
	// that loses this many leases consecutively is quarantined for
	// QuarantineFor (then probed half-open). 0 means 3; negative
	// disables the breaker.
	QuarantineAfter int
	// QuarantineFor is how long a tripped executor sits out.
	// 0 means 30s.
	QuarantineFor time.Duration

	// runFn, when set, replaces the cell engine — the in-package test
	// seam, needed at construction time because ledger recovery starts
	// running replayed jobs before New returns the scheduler.
	runFn func(ctx context.Context, j *job) (dsmnc.Result, error)
}

// job is the scheduler's record of one submission.
type job struct {
	id    string
	req   Request
	bench *workload.Bench
	sys   dsmnc.System
	opt   dsmnc.Options

	// Mutable state, guarded by the scheduler's mu.
	state    State
	err      error
	res      dsmnc.Result
	queued   time.Time
	started  time.Time
	finished time.Time
	subs     []chan Status

	// Lease bookkeeping, guarded by the scheduler's mu. epoch
	// increments per dispatch; a result or heartbeat carrying a stale
	// epoch (or arriving after the job left running) is discarded, so
	// a revoked attempt can never complete its job twice. attempt
	// counts dispatches, losses counts revoked leases — the retry
	// budget — and both survive a ledger replay.
	attempt       int
	losses        int
	epoch         uint64
	lastBeat      time.Time
	lastExec      string
	exec          *execState
	attemptCancel context.CancelFunc

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on reaching a terminal state
}

// statusLocked snapshots the job's status; callers hold the scheduler's
// mu.
func (j *job) statusLocked() Status {
	st := Status{
		ID:      j.id,
		Bench:   j.req.Bench,
		System:  j.sys.Name,
		State:   j.state,
		Attempt: j.attempt, Executor: j.lastExec,
		Queued: j.queued, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// retryEntry is one reassigned job waiting out its backoff before
// re-entering the queue.
type retryEntry struct {
	j  *job
	at time.Time
}

// Scheduler runs submitted jobs on a bounded worker pool. Create one
// with New; all methods are safe for concurrent use.
type Scheduler struct {
	cfg   Config
	queue chan *job

	mu           sync.Mutex
	jobs         map[string]*job
	doneOrder    []string // terminal job IDs, oldest first, for eviction
	draining     bool
	execs        []*execState // executor fault domains, fixed at New
	execByName   map[string]*execState
	ring         *ring        // consistent-hash routing; nil under round-robin
	rrNext       int          // round-robin cursor over execs
	retryPending []retryEntry // reassigned jobs waiting out backoff
	retryRNG     *rand.Rand   // seeded jitter source, under mu

	wg sync.WaitGroup // worker pool

	ledger        *Ledger
	recovered     atomic.Bool   // startup recovery finished re-enqueueing
	stopRecovery  chan struct{} // closed by Drain to abort re-enqueueing
	recoveryDone  chan struct{} // closed when recovery has settled
	stopRetry     chan struct{} // closed by Drain before the queue closes
	retryDone     chan struct{} // closed when the retry pump has exited
	retryWake     chan struct{} // nudges the pump after scheduleRetryLocked
	stopMonitor   chan struct{} // closed by Drain after the workers exit
	monitorDone   chan struct{} // closed when the monitor has exited
	terminalSince int           // terminal records since the last compaction, under mu

	inflight      atomic.Int64
	submitted     atomic.Int64
	deduped       atomic.Int64
	shed          atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	canceled      atomic.Int64
	restoredJobs  atomic.Int64 // terminal jobs restored from the ledger
	replayedJobs  atomic.Int64 // non-terminal jobs re-enqueued from the ledger
	watchdogKills atomic.Int64
	ledgerErrs    atomic.Int64
	leaseLost     atomic.Int64 // leases revoked or surrendered
	reassigned    atomic.Int64 // jobs requeued after a lease loss
	quarantined   atomic.Int64 // circuit-breaker trips (incl. re-arms)
	staleResults  atomic.Int64 // late/duplicate attempt outcomes discarded

	runHist  *telemetry.Histogram // run latency, seconds
	waitHist *telemetry.Histogram // queue wait, seconds

	// runFn executes one job; tests swap it to drive the scheduler
	// with synthetic work.
	runFn func(ctx context.Context, j *job) (dsmnc.Result, error)
}

// New starts a scheduler: the worker pool is live and accepting
// submissions until Drain. With cfg.Ledger set, New first replays the
// ledger — terminal jobs repopulate the result cache and non-terminal
// jobs re-enqueue under their recorded IDs (in the background, so a
// backlog deeper than the queue drains through the workers; Recovered
// reports when re-enqueueing has finished).
func New(cfg Config) (*Scheduler, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.KeepResults <= 0 {
		cfg.KeepResults = 1024
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 2 * cfg.KeepResults
	}
	if cfg.WatchdogTick <= 0 {
		cfg.WatchdogTick = 250 * time.Millisecond
	}
	switch {
	case cfg.LeaseTTL == 0:
		cfg.LeaseTTL = 15 * time.Second
	case cfg.LeaseTTL < 0:
		cfg.LeaseTTL = 0
	}
	if cfg.LeaseTick <= 0 {
		cfg.LeaseTick = cfg.LeaseTTL / 8
		if cfg.LeaseTick < 5*time.Millisecond {
			cfg.LeaseTick = 5 * time.Millisecond
		}
		if cfg.LeaseTick > time.Second {
			cfg.LeaseTick = time.Second
		}
	}
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 2
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	switch {
	case cfg.RetryBackoff == 0:
		cfg.RetryBackoff = 250 * time.Millisecond
	case cfg.RetryBackoff < 0:
		cfg.RetryBackoff = 0
	}
	if cfg.RetrySeed == 0 {
		cfg.RetrySeed = 1
	}
	switch {
	case cfg.QuarantineAfter == 0:
		cfg.QuarantineAfter = 3
	case cfg.QuarantineAfter < 0:
		cfg.QuarantineAfter = 0
	}
	if cfg.QuarantineFor <= 0 {
		cfg.QuarantineFor = 30 * time.Second
	}
	if len(cfg.Executors) == 0 {
		cfg.Executors = []Executor{Local("local-0")}
	}
	if cfg.Options.Geometry.Clusters == 0 {
		cfg.Options = dsmnc.DefaultOptions()
	}
	if cfg.Options.Sampler != nil || cfg.Options.EventTrace != nil {
		return nil, fmt.Errorf("%w: Sampler/EventTrace are single-run instruments; served jobs run concurrently",
			dsmnc.ErrConfig)
	}
	if cfg.Options.Journal != nil {
		return nil, fmt.Errorf("%w: the sweep journal is not a serving result store", dsmnc.ErrConfig)
	}
	cfg.Options.Progress = cfg.Progress

	runHist, err := telemetry.NewHistogram(telemetry.DefaultLatencyBuckets()...)
	if err != nil {
		return nil, err
	}
	waitHist, err := telemetry.NewHistogram(telemetry.DefaultLatencyBuckets()...)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:          cfg,
		queue:        make(chan *job, cfg.QueueDepth),
		jobs:         map[string]*job{},
		retryRNG:     rand.New(rand.NewSource(cfg.RetrySeed)),
		ledger:       cfg.Ledger,
		stopRecovery: make(chan struct{}),
		recoveryDone: make(chan struct{}),
		stopRetry:    make(chan struct{}),
		retryDone:    make(chan struct{}),
		retryWake:    make(chan struct{}, 1),
		stopMonitor:  make(chan struct{}),
		monitorDone:  make(chan struct{}),
		runHist:      runHist,
		waitHist:     waitHist,
	}
	s.execByName = map[string]*execState{}
	for _, e := range cfg.Executors {
		if e == nil || e.Name() == "" {
			return nil, fmt.Errorf("%w: executors must be non-nil and named", dsmnc.ErrConfig)
		}
		if _, dup := s.execByName[e.Name()]; dup {
			return nil, fmt.Errorf("%w: duplicate executor name %q", dsmnc.ErrConfig, e.Name())
		}
		if b, ok := e.(schedulerBound); ok {
			b.bind(s)
		}
		es := &execState{exec: e, name: e.Name()}
		s.execs = append(s.execs, es)
		s.execByName[es.name] = es
	}
	if cfg.HashRouting {
		names := make([]string, 0, len(s.execs))
		for _, es := range s.execs {
			names = append(names, es.name)
		}
		s.ring = newRing(names)
	}
	s.runFn = func(ctx context.Context, j *job) (dsmnc.Result, error) {
		return dsmnc.RunCell(ctx, "serve/"+j.id, j.bench, j.sys, j.opt)
	}
	if cfg.runFn != nil {
		s.runFn = cfg.runFn
	}
	var replay []*job
	if s.ledger != nil {
		replay = s.recoverFromLedger()
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	if len(replay) > 0 {
		go s.reenqueue(replay)
	} else {
		s.recovered.Store(true)
		close(s.recoveryDone)
	}
	go s.retryLoop()
	if cfg.LeaseTTL > 0 || cfg.WatchdogFactor > 0 {
		go s.monitor()
	} else {
		close(s.monitorDone)
	}
	return s, nil
}

// timeoutFor resolves a request's effective deadline under the
// scheduler's default and cap — shared by Submit and ledger recovery so
// a replayed job recomputes exactly the ID it was accepted under.
func (s *Scheduler) timeoutFor(req Request) time.Duration {
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// closedChan is the pre-closed done signal recovered terminal jobs
// share.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// recoverFromLedger replays the folded ledger into the scheduler's maps
// (called from New, before anything is shared): terminal jobs are
// restored complete with results, non-terminal jobs are rebuilt for
// re-enqueueing and returned in queued order. A recovered job whose
// request no longer compiles to its recorded ID — the server's base
// options changed between boots — is settled as failed rather than run
// under a stale identity.
func (s *Scheduler) recoverFromLedger() []*job {
	recovered := s.ledger.jobs()
	// Terminal jobs join the result cache in finished order, so the
	// KeepResults eviction discipline picks up where the dead process
	// left off; live jobs re-enqueue in their original arrival order.
	sort.SliceStable(recovered, func(i, k int) bool {
		ti, tk := recovered[i], recovered[k]
		if ti.state.Terminal() != tk.state.Terminal() {
			return ti.state.Terminal()
		}
		if ti.state.Terminal() {
			return ti.finished.Before(tk.finished)
		}
		return ti.queued.Before(tk.queued)
	})
	var replay []*job
	for _, rj := range recovered {
		if rj.state.Terminal() {
			j := &job{
				id: rj.id, req: rj.req, state: rj.state,
				queued: rj.queued, started: rj.started, finished: rj.finished,
				done: closedChan,
			}
			// Best effort: recompile for the Status fields (bench/system
			// names); the recorded outcome stands either way.
			if bench, sys, opt, err := rj.req.compile(s.cfg.Options); err == nil {
				j.bench, j.sys, j.opt = bench, sys, opt
			}
			if rj.errMsg != "" {
				j.err = errors.New(rj.errMsg)
			}
			if rj.res != nil {
				j.res = *rj.res
			}
			s.jobs[j.id] = j
			s.doneOrder = append(s.doneOrder, j.id)
			s.restoredJobs.Add(1)
			continue
		}
		bench, sys, opt, err := rj.req.compile(s.cfg.Options)
		if err == nil {
			opt.CellTimeout = s.timeoutFor(rj.req)
			if got := jobID(rj.req, opt); got != rj.id {
				err = fmt.Errorf("%w: job %s was accepted under different options (replays as %s)",
					ErrBadLedger, rj.id, got)
			}
		}
		ctx, cancel := context.WithCancel(context.Background())
		j := &job{
			id: rj.id, req: rj.req, bench: bench, sys: sys, opt: opt,
			state: StateQueued, queued: rj.queued,
			// The reassignment budget survives the restart: a job that
			// lost N leases before the crash resumes with N losses spent.
			attempt: rj.attempts, losses: rj.attempts,
			ctx: ctx, cancel: cancel, done: make(chan struct{}),
		}
		s.jobs[j.id] = j
		if err != nil {
			j.state = StateFailed
			j.err = err
			j.finished = time.Now()
			s.failed.Add(1)
			s.settleLocked(j)
			continue
		}
		replay = append(replay, j)
		s.replayedJobs.Add(1)
	}
	// Enforce the KeepResults bound over the restored cache.
	for len(s.doneOrder) > s.cfg.KeepResults {
		oldest := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, oldest)
	}
	return replay
}

// reenqueue feeds recovered non-terminal jobs back into the queue.
// Blocking sends, so a recovered backlog deeper than the queue drains
// through the workers; a Drain aborts the refill and settles whatever
// was not yet enqueued as canceled (its accepted record stays
// non-terminal... a drain writes terminal records, so it does not:
// cancellation is an outcome, recorded like any other).
func (s *Scheduler) reenqueue(jobs []*job) {
	defer close(s.recoveryDone)
	for i, j := range jobs {
		select {
		case s.queue <- j:
		case <-s.stopRecovery:
			s.mu.Lock()
			for _, k := range jobs[i:] {
				if k.state == StateQueued {
					k.state = StateCanceled
					k.err = context.Canceled
					k.finished = time.Now()
					s.canceled.Add(1)
					s.settleLocked(k)
				}
			}
			s.mu.Unlock()
			return
		}
	}
	s.recovered.Store(true)
}

// Recovered reports whether startup ledger recovery has finished
// re-enqueueing; a scheduler without a ledger (or with nothing to
// replay) is recovered from birth. The HTTP binding keeps /readyz at
// 503 until this turns true.
func (s *Scheduler) Recovered() bool { return s.recovered.Load() }

// RecoveryStats returns how many terminal jobs the ledger restored into
// the result cache and how many non-terminal jobs it re-enqueued.
func (s *Scheduler) RecoveryStats() (restored, replayed int64) {
	return s.restoredJobs.Load(), s.replayedJobs.Load()
}

// monitor is the scheduler's supervisor goroutine, merging the lease
// scan and the deadline watchdog: a running job whose last heartbeat is
// older than LeaseTTL has its lease revoked and is reassigned
// (leaseLostLocked applies the retry budget and circuit breaker), and a
// job that overran its deadline by WatchdogFactor without settling is
// force-failed with ErrWatchdog — the engine is contractually obliged
// to notice cancellation within a poll interval, so a job this far over
// is wedged and its eventual return is discarded by the epoch guard.
// The monitor outlives the workers (Drain stops it last) so executors
// blocked on a dead attempt are still revoked during a drain.
func (s *Scheduler) monitor() {
	defer close(s.monitorDone)
	tick := s.cfg.WatchdogTick
	if s.cfg.LeaseTTL > 0 && (s.cfg.WatchdogFactor <= 0 || s.cfg.LeaseTick < tick) {
		tick = s.cfg.LeaseTick
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stopMonitor:
			return
		case now := <-t.C:
			s.mu.Lock()
			for _, j := range s.jobs {
				if j.state != StateRunning {
					continue
				}
				if s.cfg.LeaseTTL > 0 && now.Sub(j.lastBeat) > s.cfg.LeaseTTL {
					s.leaseLostLocked(j, j.exec, fmt.Errorf("no heartbeat for %v (executor %s)",
						now.Sub(j.lastBeat).Round(time.Millisecond), j.lastExec))
					continue
				}
				if s.cfg.WatchdogFactor > 0 && j.opt.CellTimeout > 0 {
					limit := time.Duration(float64(j.opt.CellTimeout) * s.cfg.WatchdogFactor)
					if now.Sub(j.started) <= limit {
						continue
					}
					j.state = StateFailed
					j.err = fmt.Errorf("%w: ran %v against a %v deadline",
						ErrWatchdog, now.Sub(j.started).Round(time.Millisecond), j.opt.CellTimeout)
					j.finished = now
					s.failed.Add(1)
					s.watchdogKills.Add(1)
					s.settleLocked(j)
				}
			}
			s.mu.Unlock()
		}
	}
}

// jobID derives the idempotent job identity: the canonical request
// fingerprint crossed with the options fingerprint the sweep journal
// stores with every cell, so identical work coalesces and different
// work never does.
func jobID(req Request, opt dsmnc.Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s", req.Fingerprint(), opt.Fingerprint())
	return fmt.Sprintf("%016x", h.Sum64())
}

// Submit validates and enqueues one job. Submissions are idempotent: a
// request whose job is already queued, running or finished returns that
// job's current status without enqueueing anything. A full queue sheds
// with ErrBusy; a draining scheduler with ErrDraining (which wraps
// ErrBusy). Malformed requests fail with ErrBadRequest.
func (s *Scheduler) Submit(req Request) (Status, error) {
	req = req.normalized()
	if err := req.validate(); err != nil {
		return Status{}, err
	}
	bench, sys, opt, err := req.compile(s.cfg.Options)
	if err != nil {
		return Status{}, err
	}
	opt.CellTimeout = s.timeoutFor(req)
	id := jobID(req, opt)

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[id]; ok {
		s.deduped.Add(1)
		return existing.statusLocked(), nil
	}
	if s.draining {
		s.shed.Add(1)
		return Status{}, ErrDraining
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id: id, req: req, bench: bench, sys: sys, opt: opt,
		state: StateQueued, queued: time.Now(),
		ctx: ctx, cancel: cancel,
		done: make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		s.shed.Add(1)
		return Status{}, ErrBusy
	}
	if s.ledger != nil {
		// Durability before acknowledgement: the accepted record is
		// fsync'd before the client sees the job ID. On failure the job
		// is never registered — the dequeuing worker sees a non-queued
		// state and skips it — so there is no acknowledged-but-volatile
		// job and no ghost in the maps.
		if lerr := s.ledger.accepted(id, req, opt.Fingerprint(), j.queued); lerr != nil {
			s.ledgerErrs.Add(1)
			j.state = StateCanceled
			cancel()
			return Status{}, fmt.Errorf("serve: recording job %s in the ledger: %w", id, lerr)
		}
	}
	s.jobs[id] = j
	s.submitted.Add(1)
	if p := s.cfg.Progress; p != nil {
		p.CellsTotal.Add(1)
	}
	return j.statusLocked(), nil
}

// worker drains the queue until Drain closes it.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.dispatch(j)
	}
}

// dispatch runs one dequeued job's next attempt: pick an executor fault
// domain (avoiding the one that just lost this job's lease), grant a
// lease under a fresh epoch, execute, and deliver the outcome through
// the epoch guard.
func (s *Scheduler) dispatch(j *job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Canceled (or otherwise settled) while waiting; nothing to run.
		s.mu.Unlock()
		return
	}
	es := s.pickExecutorLocked(j)
	j.exec = es
	j.lastExec = es.name
	j.state = StateRunning
	j.attempt++
	j.epoch++
	epoch := j.epoch
	now := time.Now()
	j.started = now
	j.lastBeat = now
	actx, acancel := context.WithCancel(j.ctx)
	j.attemptCancel = acancel
	s.notifyLocked(j)
	if s.ledger != nil {
		// Advisory: losing a started record costs nothing at recovery —
		// the job replays from accepted and re-runs to the same result.
		if err := s.ledger.started(j.id, j.started); err != nil {
			s.ledgerErrs.Add(1)
		}
	}
	task := &Task{ID: j.id, Attempt: j.attempt, Request: j.req, Fingerprint: j.opt.Fingerprint(), job: j}
	lease := &Lease{s: s, j: j, epoch: epoch}
	exec := es.exec
	firstAttempt := j.attempt == 1
	queuedAt := j.queued
	s.mu.Unlock()

	s.inflight.Add(1)
	if firstAttempt {
		s.waitHist.Observe(now.Sub(queuedAt).Seconds())
	}
	res, err := exec.Execute(actx, task, lease)
	s.inflight.Add(-1)
	acancel()
	s.deliver(j, es, epoch, res, err)
}

// deliver settles one attempt's outcome through the epoch guard: a
// result from a revoked or superseded attempt (the job left running, or
// a newer epoch holds the lease) is discarded, which is what makes
// completion exactly-once under reassignment. A live outcome settles
// the job — done, canceled (the job's own context), reassigned
// (ErrLeaseLost, transient), or failed (everything else, permanent).
func (s *Scheduler) deliver(j *job, es *execState, epoch uint64, res dsmnc.Result, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateRunning || j.epoch != epoch {
		// Late or duplicate: the watchdog settled the job, the lease was
		// revoked, or a reassigned attempt already answered.
		s.staleResults.Add(1)
		return
	}
	if errors.Is(err, ErrLeaseLost) && context.Cause(j.ctx) != context.Canceled {
		// The executor surrendered the lease (transient infrastructure
		// failure): reassign rather than fail, unless the job itself was
		// canceled — a canceled job is never retried.
		s.leaseLostLocked(j, es, err)
		return
	}
	es.noteDeliveredLocked()
	j.finished = time.Now()
	s.runHist.Observe(j.finished.Sub(j.started).Seconds())
	switch {
	case err == nil:
		j.state = StateDone
		j.res = res
		s.completed.Add(1)
	case context.Cause(j.ctx) == context.Canceled:
		// The job's own context was canceled (Cancel or a forced
		// drain), as opposed to a deadline or a simulation failure.
		j.state = StateCanceled
		j.err = err
		s.canceled.Add(1)
	default:
		j.state = StateFailed
		j.err = err
		s.failed.Add(1)
	}
	s.settleLocked(j)
}

// leaseLostLocked handles one revoked or surrendered lease: cancel the
// attempt (unblocking an executor stuck in it), charge the executor's
// circuit breaker, and either reassign the job with backoff, fail it
// once the retry budget is spent, or — during a drain — settle it
// canceled so nothing is requeued behind a closing pump. Callers hold
// mu; the job is in StateRunning.
func (s *Scheduler) leaseLostLocked(j *job, es *execState, cause error) {
	now := time.Now()
	s.leaseLost.Add(1)
	if j.attemptCancel != nil {
		j.attemptCancel()
	}
	if es != nil && es.noteLostLocked(s.cfg.QuarantineAfter, s.cfg.QuarantineFor, now) {
		s.quarantined.Add(1)
	}
	j.losses++
	switch {
	case s.draining:
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = now
		s.canceled.Add(1)
		s.settleLocked(j)
	case j.losses > s.cfg.MaxRetries:
		j.state = StateFailed
		j.err = fmt.Errorf("%w: gave up after %d attempts: %v", ErrLeaseLost, j.attempt, cause)
		j.finished = now
		s.failed.Add(1)
		s.settleLocked(j)
	default:
		j.state = StateQueued
		j.err = nil
		j.started = time.Time{}
		s.reassigned.Add(1)
		if p := s.cfg.Progress; p != nil {
			p.CellsRetried.Add(1)
		}
		if s.ledger != nil {
			if lerr := s.ledger.reassigned(j.id, j.losses, now); lerr != nil {
				s.ledgerErrs.Add(1)
			}
		}
		s.notifyLocked(j)
		s.scheduleRetryLocked(j, now)
	}
}

// scheduleRetryLocked hands a reassigned job to the retry pump after
// its backoff: exponential in consecutive losses, deterministically
// jittered by the seeded RNG. Callers hold mu.
func (s *Scheduler) scheduleRetryLocked(j *job, now time.Time) {
	delay := retryDelay(s.cfg.RetryBackoff, maxRetryBackoff, j.losses, s.retryRNG)
	s.retryPending = append(s.retryPending, retryEntry{j: j, at: now.Add(delay)})
	select {
	case s.retryWake <- struct{}{}:
	default:
	}
}

// retryLoop is the retry pump: the only goroutine that feeds reassigned
// jobs back into the queue, so Drain can stop it (stopRetry, joined via
// retryDone) before closing the channel it sends on. Jobs canceled
// while waiting out their backoff are dropped; jobs still pending when
// the pump stops settle canceled, mirroring the recovery refill.
func (s *Scheduler) retryLoop() {
	defer close(s.retryDone)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		s.mu.Lock()
		var due *job
		var next time.Time
		keep := s.retryPending[:0]
		now := time.Now()
		for _, e := range s.retryPending {
			switch {
			case e.j.state != StateQueued:
				// Settled while waiting out the backoff; drop it.
			case due == nil && !e.at.After(now):
				due = e.j
			default:
				keep = append(keep, e)
				if next.IsZero() || e.at.Before(next) {
					next = e.at
				}
			}
		}
		s.retryPending = keep
		s.mu.Unlock()
		if due != nil {
			select {
			case s.queue <- due:
			case <-s.stopRetry:
				s.settlePendingRetries(due)
				return
			}
			continue
		}
		var wait <-chan time.Time
		if !next.IsZero() {
			timer.Reset(time.Until(next))
			wait = timer.C
		}
		select {
		case <-s.stopRetry:
			s.settlePendingRetries(nil)
			return
		case <-s.retryWake:
		case <-wait:
		}
		if wait != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
}

// settlePendingRetries cancels every reassigned job still waiting on
// the stopped pump (plus the one that was mid-send, if any): with the
// pump gone they would queue forever, and a drain's contract is that
// every job settles.
func (s *Scheduler) settlePendingRetries(extra *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pend := s.retryPending
	s.retryPending = nil
	if extra != nil {
		pend = append(pend, retryEntry{j: extra})
	}
	for _, e := range pend {
		if e.j.state != StateQueued {
			continue
		}
		e.j.state = StateCanceled
		e.j.err = context.Canceled
		e.j.finished = time.Now()
		s.canceled.Add(1)
		s.settleLocked(e.j)
	}
}

// settleLocked finalizes a job that just reached a terminal state:
// progress accounting, subscriber notification, done signal, and
// eviction of the oldest finished jobs beyond the KeepResults bound.
// Callers hold mu and have set state/finished already.
func (s *Scheduler) settleLocked(j *job) {
	if p := s.cfg.Progress; p != nil {
		p.CellsDone.Add(1)
		if j.state == StateFailed {
			p.CellsFailed.Add(1)
		}
	}
	j.cancel() // release the context's resources
	s.notifyLocked(j)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)

	if s.ledger != nil {
		var res *dsmnc.Result
		if j.state == StateDone {
			r := j.res
			res = &r
		}
		errMsg := ""
		if j.err != nil {
			errMsg = j.err.Error()
		}
		if err := s.ledger.terminal(j.id, j.state, errMsg, res, j.finished); err != nil {
			s.ledgerErrs.Add(1)
		}
		s.terminalSince++
	}

	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.KeepResults {
		oldest := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, oldest)
	}

	if s.ledger != nil && s.terminalSince >= s.cfg.CompactEvery {
		s.terminalSince = 0
		s.compactLedgerLocked()
	}
}

// compactLedgerLocked rewrites the ledger to just the live jobs'
// records, so its size tracks the KeepResults bound instead of history.
// Callers hold mu; a failed compaction is counted and the append-only
// file simply keeps growing until the next attempt.
func (s *Scheduler) compactLedgerLocked() {
	live := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		live = append(live, j)
	}
	sort.Slice(live, func(i, k int) bool {
		if !live[i].queued.Equal(live[k].queued) {
			return live[i].queued.Before(live[k].queued)
		}
		return live[i].id < live[k].id
	})
	recs := make([]ledgerRecord, 0, 2*len(live))
	for _, j := range live {
		req := j.req
		recs = append(recs, ledgerRecord{
			Kind: recAccepted, ID: j.id, Time: j.queued,
			Request: &req, Fingerprint: j.opt.Fingerprint(),
		})
		if !j.started.IsZero() {
			recs = append(recs, ledgerRecord{Kind: recStarted, ID: j.id, Time: j.started})
		}
		if j.losses > 0 && !j.state.Terminal() {
			// Preserve the spent retry budget across the rewrite.
			recs = append(recs, ledgerRecord{Kind: recReassigned, ID: j.id, Time: j.queued, Attempt: j.losses})
		}
		if j.state.Terminal() {
			rec := ledgerRecord{Kind: recTerminal, ID: j.id, Time: j.finished, State: j.state}
			if j.err != nil {
				rec.Error = j.err.Error()
			}
			if j.state == StateDone {
				r := j.res
				rec.Result = &r
			}
			recs = append(recs, rec)
		}
	}
	if err := s.ledger.compact(recs); err != nil {
		s.ledgerErrs.Add(1)
	}
}

// notifyLocked pushes the job's current status to its watchers; the
// channel capacity covers every possible transition (watchCapacity), so
// the send never blocks.
func (s *Scheduler) notifyLocked(j *job) {
	st := j.statusLocked()
	for _, ch := range j.subs {
		select {
		case ch <- st:
		default: // watcher fell behind; it will still see the close
		}
	}
}

// Status returns a job's current status.
func (s *Scheduler) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.statusLocked(), nil
}

// Result returns a job's result. The Result value is only meaningful
// when the returned status is StateDone; a live or unsuccessful job
// returns its status with a zero Result.
func (s *Scheduler) Result(id string) (dsmnc.Result, Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return dsmnc.Result{}, Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.res, j.statusLocked(), nil
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns that final status.
func (s *Scheduler) Wait(ctx context.Context, id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	select {
	case <-j.done:
		return s.Status(id)
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// watchCapacity sizes a watcher's channel to the worst-case transition
// count of one job lifetime: the initial snapshot, then per attempt one
// running notification and one requeue notification (a lease loss moves
// the job back to queued), then the terminal status — 2×(MaxRetries+1)
// notifications after the snapshot, plus one slot of headroom.
func (s *Scheduler) watchCapacity() int {
	return 2*(s.cfg.MaxRetries+1) + 2
}

// Watch returns a channel of the job's status updates: its current
// status immediately, then one per transition; the channel closes after
// the terminal status is delivered. The HTTP stream endpoint is a thin
// rendering of it.
func (s *Scheduler) Watch(id string) (<-chan Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	// Capacity covers the initial status plus every remaining
	// transition — including the Queued→Running→Queued cycles retries
	// add — so notifyLocked never drops for a draining reader.
	ch := make(chan Status, s.watchCapacity())
	ch <- j.statusLocked()
	if j.state.Terminal() {
		close(ch)
		return ch, nil
	}
	j.subs = append(j.subs, ch)
	return ch, nil
}

// Cancel stops a job: a queued job settles immediately as canceled, a
// running one has its context canceled and settles when the engine
// notices (it polls off the hot path). Cancelling a terminal job is a
// no-op.
func (s *Scheduler) Cancel(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = time.Now()
		s.canceled.Add(1)
		s.settleLocked(j)
	case StateRunning:
		j.cancel()
	}
	return j.statusLocked(), nil
}

// Drain shuts the scheduler down gracefully: intake stops (submissions
// shed with ErrDraining), queued and running jobs are given until ctx
// ends to finish, then the stragglers are canceled and awaited. When
// Drain returns, every job is settled and every goroutine — workers,
// retry pump, monitor — has exited; the error is ctx's if the deadline
// forced cancellations.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	wasDraining := s.draining
	if !wasDraining {
		s.draining = true
		close(s.stopRecovery)
	}
	s.mu.Unlock()
	if !wasDraining {
		// The recovery refill and the retry pump send on the queue; stop
		// both (each settles its unqueued remainder canceled) before
		// closing the channel they send on.
		<-s.recoveryDone
		close(s.stopRetry)
		<-s.retryDone
		close(s.queue)
	}

	settled := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(settled)
	}()
	var err error
	select {
	case <-settled:
	case <-ctx.Done():
		// Deadline: cancel everything still live. Queued jobs settle
		// here; running ones settle in their worker as the engine
		// observes the canceled context.
		s.mu.Lock()
		for _, j := range s.jobs {
			switch j.state {
			case StateQueued:
				j.state = StateCanceled
				j.err = context.Canceled
				j.finished = time.Now()
				s.canceled.Add(1)
				s.settleLocked(j)
			case StateRunning:
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-settled
		err = ctx.Err()
	}
	if !wasDraining {
		// The monitor outlives the workers: an executor blocked on a
		// dead attempt is unblocked by lease revocation, which is what
		// lets wg.Wait() finish. Only then is there nothing left to
		// supervise.
		close(s.stopMonitor)
		<-s.monitorDone
		if s.ledger != nil {
			// Every transition is already fsync'd; closing just releases
			// the file handle.
			_ = s.ledger.Close()
		}
	}
	return err
}

// Draining reports whether the scheduler has stopped accepting work.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns the current number of waiting jobs and the queue's
// bound.
func (s *Scheduler) QueueDepth() (depth, capacity int) {
	return len(s.queue), s.cfg.QueueDepth
}

// RetryAfter estimates how long a shed client should wait before
// retrying: the time for enough queue positions to drain at the
// observed throughput — queue depth × mean run latency ÷ capacity —
// ceiled to whole seconds and clamped to [1s, 60s]. Capacity is the
// real parallelism bound: the dispatch pool, capped by the fleet-wide
// worker slot total when remote executors have reported one — a
// 64-goroutine pool over two 4-slot nodes drains 8 cells at a time,
// not 64. Before any run has completed the mean is zero and the floor
// answers. The HTTP binding renders it as the Retry-After of every 429.
func (s *Scheduler) RetryAfter() time.Duration {
	depth, _ := s.QueueDepth()
	capacity := s.cfg.Workers
	if fleet := s.fleetSlots(); fleet > 0 && fleet < capacity {
		capacity = fleet
	}
	return retryAfter(depth, capacity, s.runHist.Mean())
}

// retryAfter is the pure estimate behind RetryAfter.
func retryAfter(depth, workers int, meanRunSeconds float64) time.Duration {
	if workers < 1 {
		workers = 1
	}
	secs := math.Ceil(float64(depth) * meanRunSeconds / float64(workers))
	if !(secs >= 1) { // catches NaN as well as the sub-second estimate
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}
