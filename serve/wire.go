package serve

// The fleet wire protocol: the compact documents a coordinator and its
// worker nodes exchange. A dispatch (WireRequest) carries the job's
// idempotent identity — ID, attempt, per-dispatch epoch, the canonical
// Request and the coordinator's options fingerprint — so a worker can
// recompile the cell from its own base options and refuse the task if
// the two machines would not compute the same thing. A poll answer
// (WireResult) carries the task's state and, once terminal, the full
// result or error. The readiness document (WireReady) is what a
// coordinator probes to learn a worker's slot capacity.
//
// Both decoders are strict and fuzz-hardened: any input bytes produce
// either a valid document or an ErrBadWire-wrapped error, never a panic
// (FuzzWireRequest, FuzzWireResult). The codec is pure bytes — the HTTP
// framing lives in cmd/dsmworker and cmd/dsmserved, so the protocol is
// testable (and fuzzable) without a socket.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"dsmnc"
)

// MaxWireRequestBytes bounds a task dispatch document: a job request
// plus its identity fields.
const MaxWireRequestBytes = 1 << 16

// MaxWireResultBytes bounds a poll answer: a full Result carries the
// aggregate counters plus one account per cluster.
const MaxWireResultBytes = 1 << 20

// MaxWireReadyBytes bounds a readiness document.
const MaxWireReadyBytes = 1 << 12

// maxWireAttempt bounds the attempt counter a dispatch may claim; real
// attempts are bounded by MaxRetries+1, so anything huge is garbage.
const maxWireAttempt = 1 << 20

// WireRequest is one task dispatch: the coordinator's grant of one
// attempt of one job to one worker node. ID and Fingerprint pin the
// job's identity (the worker recomputes both from Request and refuses
// a mismatch rather than serve a result under a wrong name); Epoch is
// the per-dispatch lease epoch that makes completion exactly-once —
// a dispatch, poll or cancel carrying a stale epoch is refused.
type WireRequest struct {
	ID          string  `json:"id"`
	Attempt     int     `json:"attempt"`
	Epoch       uint64  `json:"epoch"`
	Fingerprint string  `json:"fingerprint"`
	Request     Request `json:"request"`
}

// WireResult is one poll answer: the task's current state, and — once
// terminal — its result or error. A worker reports StateCanceled for
// attempts it abandoned (drain, coordinator cancel); the coordinator
// treats that as a lease surrender, not a job failure.
type WireResult struct {
	ID     string        `json:"id"`
	Epoch  uint64        `json:"epoch"`
	State  State         `json:"state"`
	Result *dsmnc.Result `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// WireReady is a worker's readiness document: whether it should receive
// fresh dispatches, and its capacity account — Slots bounds concurrent
// runs, Busy and Queued say how much of the bound is spent. The
// coordinator's Retry-After estimate derives from the fleet-wide slot
// sum.
type WireReady struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason"`
	Slots  int    `json:"slots"`
	Busy   int    `json:"busy"`
	Queued int    `json:"queued"`
}

// decodeStrict is the shared strict-JSON front end of the wire codec:
// bounded size, unknown fields rejected, trailing garbage rejected.
func decodeStrict(data []byte, limit int, what string, v any) error {
	if len(data) > limit {
		return fmt.Errorf("%w: %s over %d bytes", ErrBadWire, what, limit)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadWire, what, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after the %s", ErrBadWire, what)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("%w: trailing data after the %s", ErrBadWire, what)
	}
	return nil
}

// validWireID reports whether s has the shape of a job ID or options
// fingerprint: exactly 16 lowercase hex digits. Everything the fleet
// names is an FNV-64a fingerprint, so anything else is garbage.
func validWireID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseWireRequest decodes and validates one task dispatch. Every
// failure — oversized input, malformed JSON, unknown fields, a
// non-fingerprint ID, an out-of-range attempt or epoch, an embedded
// request that does not validate — is an ErrBadWire-wrapped error.
func ParseWireRequest(data []byte) (WireRequest, error) {
	var wr WireRequest
	if err := decodeStrict(data, MaxWireRequestBytes, "task dispatch", &wr); err != nil {
		return WireRequest{}, err
	}
	if !validWireID(wr.ID) {
		return WireRequest{}, fmt.Errorf("%w: task id %q is not a job fingerprint", ErrBadWire, wr.ID)
	}
	if !validWireID(wr.Fingerprint) {
		return WireRequest{}, fmt.Errorf("%w: options fingerprint %q is not a fingerprint", ErrBadWire, wr.Fingerprint)
	}
	if wr.Attempt < 1 || wr.Attempt > maxWireAttempt {
		return WireRequest{}, fmt.Errorf("%w: attempt %d outside [1, %d]", ErrBadWire, wr.Attempt, maxWireAttempt)
	}
	if wr.Epoch < 1 {
		return WireRequest{}, fmt.Errorf("%w: epoch 0 (dispatch epochs start at 1)", ErrBadWire)
	}
	wr.Request = wr.Request.normalized()
	if err := wr.Request.validate(); err != nil {
		return WireRequest{}, fmt.Errorf("%w: embedded request: %v", ErrBadWire, err)
	}
	return wr, nil
}

// Encode renders the dispatch in its canonical wire form.
func (wr WireRequest) Encode() ([]byte, error) {
	data, err := json.Marshal(wr)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding task dispatch: %v", ErrBadWire, err)
	}
	return data, nil
}

// ParseWireResult decodes and validates one poll answer. The state
// machine is enforced on the wire: done must carry a result and no
// error, failed must carry an error and no result, live states carry
// neither. Garbage is an ErrBadWire-wrapped error, never a panic.
func ParseWireResult(data []byte) (WireResult, error) {
	var wr WireResult
	if err := decodeStrict(data, MaxWireResultBytes, "task result", &wr); err != nil {
		return WireResult{}, err
	}
	if !validWireID(wr.ID) {
		return WireResult{}, fmt.Errorf("%w: task id %q is not a job fingerprint", ErrBadWire, wr.ID)
	}
	if wr.Epoch < 1 {
		return WireResult{}, fmt.Errorf("%w: epoch 0 (dispatch epochs start at 1)", ErrBadWire)
	}
	switch wr.State {
	case StateQueued, StateRunning:
		if wr.Result != nil || wr.Error != "" {
			return WireResult{}, fmt.Errorf("%w: live task %s carries a result or error", ErrBadWire, wr.ID)
		}
	case StateDone:
		if wr.Result == nil {
			return WireResult{}, fmt.Errorf("%w: done task %s carries no result", ErrBadWire, wr.ID)
		}
		if wr.Error != "" {
			return WireResult{}, fmt.Errorf("%w: done task %s carries an error", ErrBadWire, wr.ID)
		}
		if wr.Result.Refs < 0 {
			return WireResult{}, fmt.Errorf("%w: result of %s claims %d refs", ErrBadWire, wr.ID, wr.Result.Refs)
		}
	case StateFailed:
		if wr.Error == "" {
			return WireResult{}, fmt.Errorf("%w: failed task %s carries no error", ErrBadWire, wr.ID)
		}
		if wr.Result != nil {
			return WireResult{}, fmt.Errorf("%w: failed task %s carries a result", ErrBadWire, wr.ID)
		}
	case StateCanceled:
		if wr.Result != nil {
			return WireResult{}, fmt.Errorf("%w: canceled task %s carries a result", ErrBadWire, wr.ID)
		}
	default:
		return WireResult{}, fmt.Errorf("%w: unknown task state %q", ErrBadWire, wr.State)
	}
	return wr, nil
}

// Encode renders the poll answer in its canonical wire form.
func (wr WireResult) Encode() ([]byte, error) {
	data, err := json.Marshal(wr)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding task result: %v", ErrBadWire, err)
	}
	return data, nil
}

// ParseWireReady decodes and validates one readiness document.
func ParseWireReady(data []byte) (WireReady, error) {
	var rd WireReady
	if err := decodeStrict(data, MaxWireReadyBytes, "readiness document", &rd); err != nil {
		return WireReady{}, err
	}
	if rd.Slots < 0 || rd.Busy < 0 || rd.Queued < 0 {
		return WireReady{}, fmt.Errorf("%w: negative capacity account", ErrBadWire)
	}
	if rd.Slots > 1<<20 {
		return WireReady{}, fmt.Errorf("%w: %d slots is not a machine", ErrBadWire, rd.Slots)
	}
	return rd, nil
}

// Encode renders the readiness document in its canonical wire form.
func (rd WireReady) Encode() ([]byte, error) {
	data, err := json.Marshal(rd)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding readiness document: %v", ErrBadWire, err)
	}
	return data, nil
}

// wireError renders the JSON error body 4xx/5xx wire answers carry.
func wireError(err error) []byte {
	data, merr := json.Marshal(map[string]string{"error": err.Error()})
	if merr != nil {
		return []byte(`{"error":"unencodable error"}`)
	}
	return data
}
