package serve

// The worker side of the fleet: a bounded local task pool a remote
// coordinator dispatches onto over the wire protocol (wire.go). The
// worker is transport-agnostic — Dispatch/Poll/CancelTask/Ready take
// and return wire bytes plus an HTTP-shaped status code, and
// cmd/dsmworker is thin framing around them — so every admission,
// supersede and drain decision is unit-testable (and the decoder
// fuzzable) without a socket.
//
// Contract highlights:
//   - Shed, don't grow: beyond Slots running + QueueDepth waiting
//     tasks, a dispatch answers 429 and the coordinator reassigns with
//     backoff. A full worker costs latency elsewhere, never memory here.
//   - Identity is verified, not trusted: the worker recompiles the
//     dispatched Request against its own base options and refuses (412)
//     a dispatch whose options fingerprint it cannot reproduce — a
//     coordinator and a worker with different machine configurations
//     must fail loudly, not serve a wrong-named result.
//   - Epochs make re-dispatch safe: a dispatch for a task the worker
//     already holds joins it (the engine is deterministic, so one
//     computation serves every attempt), a stale-epoch dispatch, poll
//     or cancel is refused, and a worker restart simply 404s — the
//     coordinator treats all three as a lost lease and reassigns.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dsmnc"
	"dsmnc/telemetry"
	"dsmnc/workload"
)

// WorkerConfig sizes a Worker. The zero value is usable: NumCPU slots,
// a 2×Slots admission queue, 256 kept terminal tasks, and the paper's
// default machine options.
type WorkerConfig struct {
	// Slots bounds concurrently running tasks; 0 means runtime.NumCPU().
	Slots int
	// QueueDepth bounds tasks admitted beyond the running set;
	// dispatches past Slots+QueueDepth shed with 429. 0 means 2×Slots.
	QueueDepth int
	// KeepResults bounds the terminal-task cache the coordinator polls
	// results from; beyond it the oldest are evicted. 0 means 256.
	KeepResults int
	// Options are the base machine options tasks compile against; they
	// must match the coordinator's or every dispatch is refused with an
	// options-fingerprint mismatch. Zero means dsmnc.DefaultOptions().
	Options dsmnc.Options

	// runFn replaces the cell engine — the in-package test seam.
	runFn func(ctx context.Context, t *workerTask) (dsmnc.Result, error)
}

// workerTask is the worker's record of one dispatched job.
type workerTask struct {
	id    string
	req   Request
	bench *workload.Bench
	sys   dsmnc.System
	opt   dsmnc.Options

	// Guarded by the worker's mu. epoch is the newest dispatch epoch
	// seen; older epochs are refused wherever they appear.
	epoch   uint64
	attempt int
	state   State
	res     dsmnc.Result
	errMsg  string

	cancel context.CancelFunc
	done   chan struct{}
}

// wireLocked renders the task's current poll answer; callers hold mu.
func (t *workerTask) wireLocked() WireResult {
	wr := WireResult{ID: t.id, Epoch: t.epoch, State: t.state, Error: t.errMsg}
	if t.state == StateDone {
		r := t.res
		wr.Result = &r
	}
	return wr
}

// Worker runs dispatched tasks on a bounded local pool. Create one with
// NewWorker; all methods are safe for concurrent use.
type Worker struct {
	cfg WorkerConfig
	sem chan struct{} // running-task slots

	mu        sync.Mutex
	tasks     map[string]*workerTask
	doneOrder []string // terminal task IDs, oldest first, for eviction
	live      int      // queued + running tasks
	running   int
	draining  bool

	wg sync.WaitGroup

	admitted  atomic.Int64 // dispatches that created a task
	joined    atomic.Int64 // dispatches coalesced onto an existing task
	shed      atomic.Int64 // dispatches refused 429 at capacity
	stale     atomic.Int64 // stale-epoch dispatches, polls and cancels refused
	mismatch  atomic.Int64 // dispatches refused for an options-fingerprint mismatch
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64

	runFn func(ctx context.Context, t *workerTask) (dsmnc.Result, error)
}

// NewWorker builds a worker pool ready for dispatches.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Slots
	}
	if cfg.KeepResults <= 0 {
		cfg.KeepResults = 256
	}
	if cfg.Options.Geometry.Clusters == 0 {
		cfg.Options = dsmnc.DefaultOptions()
	}
	if cfg.Options.Sampler != nil || cfg.Options.EventTrace != nil {
		return nil, fmt.Errorf("%w: Sampler/EventTrace are single-run instruments; worker tasks run concurrently",
			dsmnc.ErrConfig)
	}
	if cfg.Options.Journal != nil {
		return nil, fmt.Errorf("%w: the sweep journal is not a worker result store", dsmnc.ErrConfig)
	}
	w := &Worker{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Slots),
		tasks: map[string]*workerTask{},
	}
	w.runFn = func(ctx context.Context, t *workerTask) (dsmnc.Result, error) {
		return dsmnc.RunCell(ctx, "worker/"+t.id, t.bench, t.sys, t.opt)
	}
	if cfg.runFn != nil {
		w.runFn = cfg.runFn
	}
	return w, nil
}

// Slots reports the worker's concurrent-task bound.
func (w *Worker) Slots() int { return w.cfg.Slots }

// SlowDown makes every task sleep d before running — the fleet torture
// suite's slow-is-not-dead drill (DSMNC_WORKER_SLOW_MS in cmd/dsmworker).
// The sleep respects cancellation, so revoked tasks still settle
// promptly. Call before serving dispatches; it is not synchronized with
// running tasks.
func (w *Worker) SlowDown(d time.Duration) {
	if d <= 0 {
		return
	}
	inner := w.runFn
	w.runFn = func(ctx context.Context, t *workerTask) (dsmnc.Result, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return dsmnc.Result{}, ctx.Err()
		}
		return inner(ctx, t)
	}
}

// Dispatch admits one task dispatch and returns the wire answer: 202
// with the task's status when admitted, 200 when the dispatch joined a
// task the worker already holds (a re-dispatch after a healed partition,
// or a duplicate attempt — the deterministic engine makes one
// computation serve them all), 400 for garbage or a request this
// worker cannot compile, 409 for a stale epoch, 412 for an
// options-fingerprint mismatch, 429 when full, 503 when draining.
func (w *Worker) Dispatch(body []byte) (int, []byte) {
	wr, err := ParseWireRequest(body)
	if err != nil {
		return 400, wireError(err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if t, ok := w.tasks[wr.ID]; ok {
		if wr.Epoch < t.epoch {
			w.stale.Add(1)
			return 409, wireError(fmt.Errorf("task %s is held at epoch %d; dispatch epoch %d is stale", wr.ID, t.epoch, wr.Epoch))
		}
		if wr.Epoch > t.epoch {
			t.epoch = wr.Epoch
			t.attempt = wr.Attempt
		}
		w.joined.Add(1)
		ans, aerr := t.wireLocked().Encode()
		if aerr != nil {
			return 500, wireError(aerr)
		}
		return 200, ans
	}
	if w.draining {
		return 503, wireError(errors.New("worker draining"))
	}
	if w.live >= w.cfg.Slots+w.cfg.QueueDepth {
		w.shed.Add(1)
		return 429, wireError(fmt.Errorf("worker at capacity (%d running + %d queued)", w.running, w.live-w.running))
	}
	bench, sys, opt, cerr := wr.Request.compile(w.cfg.Options)
	if cerr != nil {
		return 400, wireError(fmt.Errorf("%w: dispatch does not compile on this worker: %v", ErrBadWire, cerr))
	}
	if fp := opt.Fingerprint(); fp != wr.Fingerprint {
		w.mismatch.Add(1)
		return 412, wireError(fmt.Errorf(
			"options fingerprint %s does not match the dispatch's %s: worker base options differ from the coordinator's", fp, wr.Fingerprint))
	}
	if wr.Request.TimeoutMS > 0 {
		opt.CellTimeout = time.Duration(wr.Request.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &workerTask{
		id: wr.ID, req: wr.Request, bench: bench, sys: sys, opt: opt,
		epoch: wr.Epoch, attempt: wr.Attempt, state: StateQueued,
		cancel: cancel, done: make(chan struct{}),
	}
	w.tasks[t.id] = t
	w.live++
	w.admitted.Add(1)
	w.wg.Add(1)
	go w.run(ctx, t)
	ans, aerr := t.wireLocked().Encode()
	if aerr != nil {
		return 500, wireError(aerr)
	}
	return 202, ans
}

// run executes one admitted task: wait for a slot (cancelable), run the
// engine, settle. One goroutine per live task; the slot semaphore is
// what bounds actual concurrency.
func (w *Worker) run(ctx context.Context, t *workerTask) {
	defer w.wg.Done()
	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		w.settle(t, dsmnc.Result{}, context.Cause(ctx))
		return
	}
	defer func() { <-w.sem }()
	w.mu.Lock()
	if t.state != StateQueued {
		w.mu.Unlock()
		return
	}
	t.state = StateRunning
	w.running++
	w.mu.Unlock()
	res, err := w.runFn(ctx, t)
	w.settle(t, res, err)
}

// settle records one task's outcome: done, canceled (its context was
// canceled — a coordinator cancel or a worker drain, which the
// coordinator treats as a surrendered lease), or failed (an engine or
// deadline error, permanent). Terminal tasks stay pollable until the
// KeepResults eviction reclaims them.
func (w *Worker) settle(t *workerTask, res dsmnc.Result, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if t.state.Terminal() {
		return
	}
	if t.state == StateRunning {
		w.running--
	}
	switch {
	case err == nil:
		t.state = StateDone
		t.res = res
		w.completed.Add(1)
	case errors.Is(err, context.Canceled):
		t.state = StateCanceled
		t.errMsg = err.Error()
		w.canceled.Add(1)
	default:
		t.state = StateFailed
		t.errMsg = err.Error()
		w.failed.Add(1)
	}
	t.cancel()
	close(t.done)
	w.live--
	w.doneOrder = append(w.doneOrder, t.id)
	for len(w.doneOrder) > w.cfg.KeepResults {
		oldest := w.doneOrder[0]
		w.doneOrder = w.doneOrder[1:]
		delete(w.tasks, oldest)
	}
}

// Poll answers a coordinator's status poll for one task at one epoch:
// 200 with the WireResult, 404 for a task this worker does not hold
// (never dispatched, evicted, or a restarted worker — the coordinator
// reassigns), 409 for a stale epoch. A poll is the wire form of a lease
// heartbeat: a coordinator only renews while polls answer.
func (w *Worker) Poll(id string, epoch uint64) (int, []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	t, ok := w.tasks[id]
	if !ok {
		return 404, wireError(fmt.Errorf("unknown task %s", id))
	}
	if epoch < t.epoch {
		w.stale.Add(1)
		return 409, wireError(fmt.Errorf("task %s is held at epoch %d; poll epoch %d is stale", id, t.epoch, epoch))
	}
	if epoch > t.epoch {
		t.epoch = epoch
	}
	ans, err := t.wireLocked().Encode()
	if err != nil {
		return 500, wireError(err)
	}
	return 200, ans
}

// CancelTask cancels one live task at one epoch: 200 with the task's
// status (cancellation is asynchronous; the engine notices at its next
// poll), 404 unknown, 409 stale — a cancel from a superseded attempt
// must not kill the computation a newer attempt is waiting on.
func (w *Worker) CancelTask(id string, epoch uint64) (int, []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	t, ok := w.tasks[id]
	if !ok {
		return 404, wireError(fmt.Errorf("unknown task %s", id))
	}
	if epoch < t.epoch {
		w.stale.Add(1)
		return 409, wireError(fmt.Errorf("task %s is held at epoch %d; cancel epoch %d is stale", id, t.epoch, epoch))
	}
	if !t.state.Terminal() {
		t.cancel()
	}
	ans, err := t.wireLocked().Encode()
	if err != nil {
		return 500, wireError(err)
	}
	return 200, ans
}

// Ready answers the readiness probe: 200 while accepting dispatches,
// 503 while draining — either way the body is the worker's capacity
// account, which is how a coordinator learns the fleet's slot total.
func (w *Worker) Ready() (int, []byte) {
	w.mu.Lock()
	rd := WireReady{
		Ready:  !w.draining,
		Reason: "ok",
		Slots:  w.cfg.Slots,
		Busy:   w.running,
		Queued: w.live - w.running,
	}
	if w.draining {
		rd.Reason = "draining"
	}
	w.mu.Unlock()
	body, err := rd.Encode()
	if err != nil {
		return 500, wireError(err)
	}
	if !rd.Ready {
		return 503, body
	}
	return 200, body
}

// Drain stops intake (dispatches answer 503) and waits for live tasks
// to settle; once ctx ends the stragglers are canceled and awaited.
// Polls keep answering throughout, so a coordinator collects results
// from a draining worker right up to its exit.
func (w *Worker) Drain(ctx context.Context) error {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
	settled := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(settled)
	}()
	var err error
	select {
	case <-settled:
	case <-ctx.Done():
		w.mu.Lock()
		for _, t := range w.tasks {
			if !t.state.Terminal() {
				t.cancel()
			}
		}
		w.mu.Unlock()
		<-settled
		err = ctx.Err()
	}
	return err
}

// Draining reports whether the worker has stopped accepting dispatches.
func (w *Worker) Draining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// RegisterMetrics exposes the worker on a telemetry registry as the
// dsmnc_serve_worker_* series (docs/observability.md).
func (w *Worker) RegisterMetrics(r *telemetry.Registry) error {
	regs := []error{
		r.Gauge("dsmnc_serve_worker_slots", "Concurrent-task bound of this worker's local pool.",
			func() float64 { return float64(w.cfg.Slots) }),
		r.Gauge("dsmnc_serve_worker_busy", "Tasks currently running on the local pool.",
			func() float64 {
				w.mu.Lock()
				defer w.mu.Unlock()
				return float64(w.running)
			}),
		r.Gauge("dsmnc_serve_worker_queued", "Admitted tasks waiting for a slot.",
			func() float64 {
				w.mu.Lock()
				defer w.mu.Unlock()
				return float64(w.live - w.running)
			}),
		r.Gauge("dsmnc_serve_worker_draining", "1 while the worker refuses fresh dispatches pending shutdown.",
			func() float64 {
				w.mu.Lock()
				defer w.mu.Unlock()
				if w.draining {
					return 1
				}
				return 0
			}),
		r.Counter("dsmnc_serve_worker_tasks_total", "Dispatches admitted as fresh tasks.",
			func() float64 { return float64(w.admitted.Load()) }),
		r.Counter("dsmnc_serve_worker_joined_total", "Dispatches coalesced onto a task the worker already held.",
			func() float64 { return float64(w.joined.Load()) }),
		r.Counter("dsmnc_serve_worker_shed_total", "Dispatches refused 429 at the slots+queue bound.",
			func() float64 { return float64(w.shed.Load()) }),
		r.Counter("dsmnc_serve_worker_stale_total", "Stale-epoch dispatches, polls and cancels refused.",
			func() float64 { return float64(w.stale.Load()) }),
		r.Counter("dsmnc_serve_worker_mismatch_total", "Dispatches refused for an options-fingerprint mismatch.",
			func() float64 { return float64(w.mismatch.Load()) }),
		r.Counter("dsmnc_serve_worker_done_total", "Tasks that finished successfully.",
			func() float64 { return float64(w.completed.Load()) }),
		r.Counter("dsmnc_serve_worker_failed_total", "Tasks whose outcome was a permanent error.",
			func() float64 { return float64(w.failed.Load()) }),
		r.Counter("dsmnc_serve_worker_canceled_total", "Tasks canceled by the coordinator or a drain.",
			func() float64 { return float64(w.canceled.Load()) }),
	}
	for _, err := range regs {
		if err != nil {
			return err
		}
	}
	return nil
}
