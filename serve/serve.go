// Package serve is the transport-agnostic serving layer over the dsmnc
// cell engine: a panic-free job scheduler with a bounded FIFO queue, a
// worker pool, per-job deadlines, idempotent job IDs with a result
// cache, cancellation and graceful drain. A served cell runs through
// exactly the dsmnc.RunCell machinery a direct Run uses, so its result
// is byte-identical to running the same options locally — the serving
// acceptance suite proves it against the committed golden corpus.
//
// The package contains no transport: cmd/dsmserved binds it to HTTP
// (net/http stays confined to telemetry/ and cmd/, AST-enforced), and
// tests drive it loopback. Under load the scheduler sheds instead of
// growing: once the queue is full, Submit fails fast with ErrBusy and
// the caller is expected to retry later (HTTP maps this to 429 with a
// Retry-After). See docs/serving.md.
package serve

import (
	"errors"
	"fmt"
)

// ErrBadRequest marks a job submission that could not be decoded or
// validated: malformed JSON, an unknown benchmark or system, or
// out-of-range parameters. It joins the library's sentinel-error family
// (ErrConfig, ErrBadTrace, ErrBadJournal, ...): the decoder never
// panics, whatever the bytes — FuzzJobRequest enforces it.
var ErrBadRequest = errors.New("serve: invalid job request")

// ErrBusy is the backpressure signal: the bounded queue is full and the
// submission was shed rather than buffered without bound. Retry later.
var ErrBusy = errors.New("serve: queue full")

// ErrDraining marks a submission to a scheduler that is shutting down.
// It wraps ErrBusy so a generic "shed" check catches both.
var ErrDraining = fmt.Errorf("%w: scheduler draining", ErrBusy)

// ErrUnknownJob marks a status, result, watch or cancel call for a job
// ID the scheduler does not hold (never submitted, or evicted from the
// bounded result cache).
var ErrUnknownJob = errors.New("serve: unknown job")

// ErrBadLedger marks a job ledger with a corrupt record body: a
// terminated line whose checksum or structure does not hold. (An
// *unterminated* final line is not corruption but the signature of a
// crash mid-append; it is truncated away and its job simply replays.)
// The loader never panics, whatever the bytes — FuzzLedger enforces it.
var ErrBadLedger = errors.New("serve: malformed job ledger")

// ErrBadWire marks a fleet wire document that could not be decoded or
// validated: a malformed task dispatch, a result that claims to be done
// without carrying one, an ID that is not a job fingerprint. Like the
// other hardened decoders the wire codec never panics, whatever the
// bytes — FuzzWireRequest and FuzzWireResult enforce it.
var ErrBadWire = errors.New("serve: malformed wire document")

// ErrLeaseLost marks a transient executor failure: an attempt's lease
// expired without renewal (worker crash, stall, dropped result) or the
// executor surrendered it. Unlike engine or config errors it does not
// fail the job — the scheduler reassigns the job to another executor
// with backoff until the retry budget is spent, at which point the job
// fails with an ErrLeaseLost-wrapped error.
var ErrLeaseLost = errors.New("serve: executor lease lost")

// ErrWatchdog marks a job the watchdog force-failed: it overran its
// deadline by the configured factor without settling, which means the
// engine stopped honoring its context. The job's worker slot is
// reclaimed for accounting; the wedged goroutine is cancelled and its
// eventual return discarded.
var ErrWatchdog = errors.New("serve: watchdog killed overdue job")
