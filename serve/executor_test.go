package serve

// The executor-fabric unit suite: lease loss and reassignment, the
// bounded retry budget, deterministic backoff, the circuit breaker and
// its readiness account, the watch-capacity guarantee across a
// max-retry lifetime, a Drain racing ledger recovery under -race, and
// the reassignment budget surviving a restart. The sustained-injection
// proof lives in chaos_test.go.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dsmnc"
)

// funcExecutor adapts a closure to the Executor interface, the test
// stand-in for a remote transport.
type funcExecutor struct {
	name string
	fn   func(ctx context.Context, t *Task, l *Lease) (dsmnc.Result, error)
}

func (e *funcExecutor) Name() string { return e.name }

func (e *funcExecutor) Execute(ctx context.Context, t *Task, l *Lease) (dsmnc.Result, error) {
	return e.fn(ctx, t, l)
}

// TestLeaseLossReassigns is the fabric's core promise: an attempt that
// goes silent has its lease revoked by the monitor and the job is
// reassigned, not lost — and the revoked attempt's eventual return is
// discarded by the epoch guard, not double-counted.
func TestLeaseLossReassigns(t *testing.T) {
	flaky := &funcExecutor{name: "flaky"}
	flaky.fn = func(ctx context.Context, task *Task, l *Lease) (dsmnc.Result, error) {
		if task.Attempt == 1 {
			// Silent death: no heartbeats, no answer, until revoked.
			<-ctx.Done()
			return dsmnc.Result{}, fmt.Errorf("%w: worker went dark", ErrLeaseLost)
		}
		return dsmnc.Result{Refs: 1}, nil
	}
	s := mustScheduler(t, Config{
		Workers: 1, LeaseTTL: 30 * time.Millisecond, LeaseTick: 5 * time.Millisecond,
		RetryBackoff: -1, MaxRetries: 2, QuarantineAfter: -1,
		Executors: []Executor{flaky},
	})
	defer s.Drain(context.Background())

	st0, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, st0.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want done after reassignment", st.State, st.Error)
	}
	if st.Attempt != 2 || st.Executor != "flaky" {
		t.Errorf("status reports attempt %d on %q, want attempt 2 on flaky", st.Attempt, st.Executor)
	}
	if got := s.leaseLost.Load(); got != 1 {
		t.Errorf("leaseLost = %d, want 1", got)
	}
	if got := s.reassigned.Load(); got != 1 {
		t.Errorf("reassigned = %d, want 1", got)
	}
	// The revoked attempt returned after its lease was gone; the epoch
	// guard must have discarded it (its return races Wait, so poll).
	deadline := time.Now().Add(5 * time.Second)
	for s.staleResults.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("revoked attempt's late return was never discarded as stale")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.completed.Load(); got != 1 {
		t.Errorf("completed = %d, want exactly 1", got)
	}
}

// TestVoluntaryLeaseSurrender: an executor that returns ErrLeaseLost is
// a transient infrastructure failure — reassigned until the budget is
// spent, then failed with an ErrLeaseLost-wrapped error. Leases are
// disabled here, proving the deliver path alone classifies transience.
func TestVoluntaryLeaseSurrender(t *testing.T) {
	var attempts atomic.Int64
	bad := &funcExecutor{name: "bad", fn: func(ctx context.Context, task *Task, l *Lease) (dsmnc.Result, error) {
		attempts.Add(1)
		return dsmnc.Result{}, fmt.Errorf("%w: connection reset", ErrLeaseLost)
	}}
	s := mustScheduler(t, Config{
		Workers: 1, LeaseTTL: -1, RetryBackoff: -1, MaxRetries: 1, QuarantineAfter: -1,
		Executors: []Executor{bad},
	})
	defer s.Drain(context.Background())

	st0, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, st0.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("job finished %s, want failed once the retry budget is spent", st.State)
	}
	if !strings.Contains(st.Error, "gave up after 2 attempts") {
		t.Errorf("failure %q does not account for the spent budget", st.Error)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("executor ran %d attempts, want 2 (1 + MaxRetries)", got)
	}
	if got := s.failed.Load(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
}

// TestRetryBackoffDeterministic: a fixed seed yields a reproducible
// backoff schedule, each delay exponential in the loss count and
// jittered within [d/2, d].
func TestRetryBackoffDeterministic(t *testing.T) {
	const base = 10 * time.Millisecond
	seq := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 0, 20)
		for losses := 1; losses <= 20; losses++ {
			out = append(out, retryDelay(base, maxRetryBackoff, losses, rng))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7, loss %d: %v vs %v — schedule is not reproducible", i+1, a[i], b[i])
		}
	}
	for i, d := range a {
		exp := base << i
		if exp > maxRetryBackoff || exp <= 0 {
			exp = maxRetryBackoff
		}
		if d < exp/2 || d > exp {
			t.Errorf("loss %d: delay %v outside jitter window [%v, %v]", i+1, d, exp/2, exp)
		}
	}
	if d := retryDelay(0, maxRetryBackoff, 3, rand.New(rand.NewSource(1))); d != 0 {
		t.Errorf("disabled backoff returned %v, want 0", d)
	}
}

// TestAllQuarantinedStillServes: the breaker trips on the sole executor
// (readiness goes unready with reason "quarantined") but dispatch falls
// back to the least-bad domain — availability over purity — so jobs
// still settle instead of stranding.
func TestAllQuarantinedStillServes(t *testing.T) {
	bad := &funcExecutor{name: "bad", fn: func(ctx context.Context, task *Task, l *Lease) (dsmnc.Result, error) {
		return dsmnc.Result{}, fmt.Errorf("%w: flapping link", ErrLeaseLost)
	}}
	s := mustScheduler(t, Config{
		Workers: 1, LeaseTTL: -1, RetryBackoff: -1, MaxRetries: 0,
		QuarantineAfter: 1, QuarantineFor: time.Hour,
		Executors: []Executor{bad},
	})
	defer s.Drain(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st0, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := s.Wait(ctx, st0.ID); err != nil || st.State != StateFailed {
		t.Fatalf("first job: %v / %v, want failed", st, err)
	}
	if got := s.quarantined.Load(); got < 1 {
		t.Errorf("quarantined trips = %d, want >= 1", got)
	}
	rd := s.Readiness()
	if rd.Ready || rd.Reason != "quarantined" {
		t.Errorf("readiness = %+v, want unready with reason quarantined", rd)
	}
	if len(rd.Executors) != 1 || !rd.Executors[0].Quarantined || rd.Executors[0].Name != "bad" {
		t.Errorf("executor account %+v does not show bad quarantined", rd.Executors)
	}
	// A second job must still be dispatched (to the quarantined domain,
	// there being no other) and settle rather than hang.
	st1, err := s.Submit(req(1))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := s.Wait(ctx, st1.ID); err != nil || st.State != StateFailed {
		t.Fatalf("job under full quarantine: %v / %v, want failed (served, not stranded)", st, err)
	}
}

// TestWatchCapacityNotifyNeverDrops is the satellite regression: a
// watcher that reads nothing until the job settles still receives every
// transition of a maximal lifetime — the initial snapshot plus one
// running and one requeue notification per attempt and the terminal
// status — because Watch's capacity is derived from MaxRetries.
func TestWatchCapacityNotifyNeverDrops(t *testing.T) {
	gate := make(chan struct{})
	exec := &funcExecutor{name: "mixed", fn: func(ctx context.Context, task *Task, l *Lease) (dsmnc.Result, error) {
		if task.Request.NCBytes == req(0).NCBytes {
			<-gate // the blocker: holds the lone worker until released
			return dsmnc.Result{Refs: 1}, nil
		}
		return dsmnc.Result{}, fmt.Errorf("%w: surrendered", ErrLeaseLost)
	}}
	const retries = 3
	s := mustScheduler(t, Config{
		Workers: 1, LeaseTTL: -1, RetryBackoff: -1, MaxRetries: retries, QuarantineAfter: -1,
		Executors: []Executor{exec},
	})
	defer s.Drain(context.Background())

	// Occupy the only worker so the victim is provably still queued
	// when the watch is registered.
	blocker, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(req(1))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Watch(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cap(ch) != 2*(retries+1)+2 {
		t.Fatalf("watch capacity %d, want %d for MaxRetries=%d", cap(ch), 2*(retries+1)+2, retries)
	}
	close(gate)

	// Drain the channel without ever keeping pace; it closes after the
	// terminal status is delivered.
	var got []Status
	for st := range ch {
		got = append(got, st)
	}
	want := 1 + 2*(retries+1) // snapshot + (running, requeue-or-terminal) per attempt
	if len(got) != want {
		states := make([]State, len(got))
		for i, st := range got {
			states[i] = st.State
		}
		t.Fatalf("watcher saw %d statuses %v, want all %d — notifyLocked dropped", len(got), states, want)
	}
	if got[0].State != StateQueued {
		t.Errorf("snapshot state %s, want queued", got[0].State)
	}
	running := 0
	for _, st := range got {
		if st.State == StateRunning {
			running++
		}
	}
	if running != retries+1 {
		t.Errorf("watcher saw %d running transitions, want %d", running, retries+1)
	}
	if last := got[len(got)-1]; last.State != StateFailed || last.Attempt != retries+1 {
		t.Errorf("final status %+v, want failed at attempt %d", last, retries+1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if st, err := s.Wait(ctx, blocker.ID); err != nil || st.State != StateDone {
		t.Fatalf("blocker: %v / %v", st, err)
	}
}

// TestDrainRacesRecovery: a Drain that lands while ledger replay is
// still re-enqueueing a backlog (one gated worker behind a one-deep
// queue, so the refill is provably mid-flight) must settle every
// replayed job to a terminal state and leak nothing. Run under -race by
// make race and make chaos-smoke.
func TestDrainRacesRecovery(t *testing.T) {
	before := runtime.NumGoroutine()
	path := ledgerPath(t)

	// An ID oracle with the same config the recovering scheduler uses.
	oracle := mustScheduler(t, Config{Workers: 1, runFn: newFakeRunner(nil, 0).run})
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	const backlog = 64
	ids := make([]string, 0, backlog)
	for n := 0; n < backlog; n++ {
		id, fp := idFor(t, oracle, req(n))
		if err := l.accepted(id, req(n).normalized(), fp, time.Now()); err != nil {
			t.Fatal(err)
		}
		if n%7 == 0 {
			// A few jobs had already burned retries before the crash.
			if err := l.reassigned(id, 1, time.Now()); err != nil {
				t.Fatal(err)
			}
		}
		ids = append(ids, id)
	}
	l.Close()
	if err := oracle.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{}) // never released: the drain must force it
	fr := newFakeRunner(gate, 0)
	s, err := New(Config{Workers: 1, QueueDepth: 1, Ledger: l2, runFn: fr.run})
	if err != nil {
		t.Fatal(err)
	}
	// Let the refill wedge: one job running against the gate, one in
	// the queue, sixty-two behind the blocked reenqueue send.
	time.Sleep(20 * time.Millisecond)

	dctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Drain(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want the deadline error", err)
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("replayed job %s lost by the drain: %v", id, err)
		}
		if !st.State.Terminal() {
			t.Fatalf("replayed job %s left %s after Drain returned", id, st.State)
		}
	}
	checkNoGoroutineLeak(t, before)
}

// TestReassignCountsSurviveRestart: the reassigned ledger records make
// the retry budget durable — a job that lost N leases before a crash
// resumes with N losses spent, so a restart cannot launder a flapping
// job into a fresh budget.
func TestReassignCountsSurviveRestart(t *testing.T) {
	path := ledgerPath(t)
	oracle := mustScheduler(t, Config{Workers: 1, runFn: newFakeRunner(nil, 0).run})
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	id, fp := idFor(t, oracle, req(0))
	if err := l.accepted(id, req(0).normalized(), fp, time.Now()); err != nil {
		t.Fatal(err)
	}
	// Two losses journaled before the crash; the second record wins.
	if err := l.reassigned(id, 1, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := l.reassigned(id, 2, time.Now()); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := oracle.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	var attempts atomic.Int64
	bad := &funcExecutor{name: "bad", fn: func(ctx context.Context, task *Task, l *Lease) (dsmnc.Result, error) {
		attempts.Add(1)
		return dsmnc.Result{}, fmt.Errorf("%w: still flapping", ErrLeaseLost)
	}}
	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Workers: 1, LeaseTTL: -1, RetryBackoff: -1, MaxRetries: 2, QuarantineAfter: -1,
		Executors: []Executor{bad}, Ledger: l2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	if _, replayed := s.RecoveryStats(); replayed != 1 {
		t.Fatalf("replayed %d jobs, want 1", replayed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	// Budget is MaxRetries=2 losses; two were spent pre-crash, so the
	// single post-restart loss must exhaust it.
	if st.State != StateFailed || !strings.Contains(st.Error, "gave up after 3 attempts") {
		t.Fatalf("recovered flapper finished %s (%s), want failed on the inherited budget", st.State, st.Error)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("executor ran %d post-restart attempts, want 1", got)
	}
}

// FuzzStatusJSON: the wire-visible status and readiness documents
// round-trip through encoding/json without panics or drift — the
// no-surprises guarantee behind /v1/jobs and /readyz.
func FuzzStatusJSON(f *testing.F) {
	f.Add([]byte(`{"id":"x","state":"queued","attempt":1,"executor":"local-0"}`))
	f.Add([]byte(`{"ready":true,"reason":"degraded","executors":[{"name":"local-0","quarantined":true}]}`))
	f.Add([]byte(`{"state":"running","queued":"2026-01-02T15:04:05Z"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var st Status
		if json.Unmarshal(data, &st) == nil {
			out, err := json.Marshal(st)
			if err != nil {
				t.Fatalf("status failed to re-marshal: %v", err)
			}
			var again Status
			if err := json.Unmarshal(out, &again); err != nil {
				t.Fatalf("status round-trip: %v re-parsing %s", err, out)
			}
		}
		var rd Readiness
		if json.Unmarshal(data, &rd) == nil {
			out, err := json.Marshal(rd)
			if err != nil {
				t.Fatalf("readiness failed to re-marshal: %v", err)
			}
			var again Readiness
			if err := json.Unmarshal(out, &again); err != nil {
				t.Fatalf("readiness round-trip: %v re-parsing %s", err, out)
			}
		}
	})
}
