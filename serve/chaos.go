package serve

// The deterministic chaos harness, in the spirit of internal/fault: a
// ChaosExecutor wraps a real executor and, from a seeded RNG, injects
// the failure modes a distributed executor fabric must survive — crash
// (the attempt dies without a word), stall (heartbeats then silence),
// slow (alive and renewing, just late: slow must NOT be treated as
// dead), drop-result (the work finished but the answer never arrived),
// and late-duplicate-result (a revoked attempt answers after its job
// was reassigned, which the epoch guard must discard). TestChaosTorture
// (make chaos-smoke) soaks the scheduler under sustained injection and
// requires zero lost acknowledged jobs, zero duplicate completions, and
// results field-identical to the golden corpus.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dsmnc"
)

// ChaosKind names one injected failure mode.
type ChaosKind int

// The five injected failure modes.
const (
	// ChaosCrash kills the attempt outright: no heartbeats, no result,
	// just silence until the lease is revoked.
	ChaosCrash ChaosKind = iota
	// ChaosStall heartbeats a few times and then goes silent — the
	// worker was alive and then wedged.
	ChaosStall
	// ChaosSlow completes the work late while renewing the lease the
	// whole time: the scheduler must treat it as alive, not dead.
	ChaosSlow
	// ChaosDrop completes the work but loses the answer: heartbeats
	// stop and the computed result is discarded.
	ChaosDrop
	// ChaosDup holds a computed result until after the lease is
	// revoked and the job reassigned, then returns it stale — the
	// exactly-once check.
	ChaosDup

	chaosKinds // count, for the default kind set
)

// String names the fault kind.
func (k ChaosKind) String() string {
	switch k {
	case ChaosCrash:
		return "crash"
	case ChaosStall:
		return "stall"
	case ChaosSlow:
		return "slow"
	case ChaosDrop:
		return "drop-result"
	case ChaosDup:
		return "late-duplicate"
	default:
		return fmt.Sprintf("ChaosKind(%d)", int(k))
	}
}

// ChaosConfig tunes the injector. The zero value (plus a Seed) injects
// every kind at rate 0.5.
type ChaosConfig struct {
	// Seed drives the injection RNG; a fixed seed yields a
	// reproducible draw sequence.
	Seed int64
	// Rate is the per-attempt injection probability in [0,1];
	// 0 means 0.5.
	Rate float64
	// Kinds restricts which faults are injected; nil means all five.
	Kinds []ChaosKind
	// StallBeats is how many heartbeats a stall sends before going
	// silent; 0 means 2.
	StallBeats int
	// SlowBy is how late a slow attempt answers; 0 means twice the
	// lease TTL (or 50ms when leases are disabled).
	SlowBy time.Duration
}

// ChaosExecutor injects seeded faults in front of an inner executor.
// Attempts that dodge the injection run through untouched. Safe for the
// concurrent use the worker pool makes of it.
type ChaosExecutor struct {
	inner Executor
	cfg   ChaosConfig

	mu       sync.Mutex
	rng      *rand.Rand
	injected [chaosKinds]int64
}

// NewChaosExecutor wraps inner with the fault injector. Dev/test only:
// it exists so the chaos suite (and dsmserved's -chaos flag) can prove
// the lease fabric against every failure mode on demand.
func NewChaosExecutor(inner Executor, cfg ChaosConfig) *ChaosExecutor {
	if cfg.Rate == 0 {
		cfg.Rate = 0.5
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []ChaosKind{ChaosCrash, ChaosStall, ChaosSlow, ChaosDrop, ChaosDup}
	}
	if cfg.StallBeats <= 0 {
		cfg.StallBeats = 2
	}
	return &ChaosExecutor{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name reports the wrapped executor's fault-domain name.
func (c *ChaosExecutor) Name() string { return c.inner.Name() }

// bind forwards the scheduler to the wrapped executor.
func (c *ChaosExecutor) bind(s *Scheduler) {
	if b, ok := c.inner.(schedulerBound); ok {
		b.bind(s)
	}
}

// Injected returns how many faults of each kind have been injected.
func (c *ChaosExecutor) Injected() map[ChaosKind]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[ChaosKind]int64, int(chaosKinds))
	for k, n := range c.injected {
		if n > 0 {
			out[ChaosKind(k)] = n
		}
	}
	return out
}

// draw decides, from the seeded RNG, whether this attempt is sabotaged
// and how.
func (c *ChaosExecutor) draw() (ChaosKind, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() >= c.cfg.Rate {
		return 0, false
	}
	k := c.cfg.Kinds[c.rng.Intn(len(c.cfg.Kinds))]
	c.injected[k]++
	return k, true
}

// Execute runs one attempt, possibly through an injected fault.
func (c *ChaosExecutor) Execute(ctx context.Context, task *Task, lease *Lease) (dsmnc.Result, error) {
	kind, inject := c.draw()
	if !inject {
		return c.inner.Execute(ctx, task, lease)
	}
	switch kind {
	case ChaosCrash:
		// Sudden death: no heartbeats, no answer. Wait out the
		// revocation so the worker slot is held exactly as a hung
		// remote call would hold it.
		<-ctx.Done()
		return dsmnc.Result{}, fmt.Errorf("%w: injected crash (attempt %d)", ErrLeaseLost, task.Attempt)
	case ChaosStall:
		// Alive, then wedged: a few renewals, then silence until the
		// monitor revokes the lease.
		every := lease.heartbeatEvery()
		if every <= 0 {
			every = 5 * time.Millisecond
		}
		for i := 0; i < c.cfg.StallBeats; i++ {
			if !chaosSleep(ctx, every) {
				break
			}
			lease.Heartbeat()
		}
		<-ctx.Done()
		return dsmnc.Result{}, fmt.Errorf("%w: injected stall (attempt %d)", ErrLeaseLost, task.Attempt)
	case ChaosSlow:
		// Late but alive: finish the work, then sit on the answer while
		// dutifully renewing the lease. Slow is not dead — the
		// scheduler must not revoke this one.
		res, err := c.inner.Execute(ctx, task, lease)
		slowBy := c.cfg.SlowBy
		if slowBy <= 0 {
			slowBy = 2 * lease.TTL()
			if slowBy <= 0 {
				slowBy = 50 * time.Millisecond
			}
		}
		every := lease.heartbeatEvery()
		if every <= 0 || every > slowBy {
			every = slowBy
		}
		deadline := time.Now().Add(slowBy)
		for time.Now().Before(deadline) {
			if !chaosSleep(ctx, every) {
				break
			}
			lease.Heartbeat()
		}
		return res, err
	case ChaosDrop:
		// The work happened; the answer evaporated. Heartbeats stop
		// with the computation done, so the lease expires and the
		// scheduler re-runs the job elsewhere.
		_, _ = c.inner.Execute(ctx, task, lease)
		<-ctx.Done()
		return dsmnc.Result{}, fmt.Errorf("%w: injected result drop (attempt %d)", ErrLeaseLost, task.Attempt)
	default: // ChaosDup
		// Exactly-once probe: compute the real result, hold it past
		// revocation and reassignment, then return it stale with no
		// error — the epoch guard must discard it, or the job would
		// complete twice.
		res, _ := c.inner.Execute(ctx, task, lease)
		<-ctx.Done()
		return res, nil
	}
}

// chaosSleep waits d unless ctx ends first; it reports whether the full
// wait elapsed.
func chaosSleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
