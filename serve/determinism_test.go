package serve

// The serving determinism gate: every cell of the committed golden
// corpus, submitted through the scheduler as a job request, must equal
// the golden stats field for field (the same stats.DiffCounters the
// library's TestGoldenStats uses). A served simulation is the
// simulation — the scheduler adds queueing, not noise.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmnc/stats"
	"dsmnc/workload"
)

// goldenCell mirrors the committed golden file layout (golden_test.go).
type goldenCell struct {
	Refs  int64          `json:"refs"`
	Stats stats.Counters `json:"stats"`
}

// goldenRequests maps the golden corpus's five systems to job requests;
// the request defaults (16 KB NC, vxp threshold 32, scale small) are
// exactly the corpus parameters, so a sparse request must land on the
// committed cell.
func goldenRequests(bench string) []Request {
	return []Request{
		{Bench: bench, System: "base"},
		{Bench: bench, System: "nc"},
		{Bench: bench, System: "vb"},
		{Bench: bench, System: "vp"},
		{Bench: bench, System: "vxp", PCFrac: 5},
	}
}

// goldenFile returns the committed golden path for a served job, using
// the same file-safe renaming of the system name as the corpus writer.
func goldenFile(st Status) string {
	r := strings.NewReplacer("(", "-", ")", "", "/", "-", " ", "")
	return filepath.Join("..", "testdata", "golden", r.Replace(st.System)+"_"+st.Bench+".json")
}

func TestServedGoldenStats(t *testing.T) {
	benches := workload.Names()
	if testing.Short() {
		benches = []string{"FFT", "Ocean"}
	}
	s := mustScheduler(t, Config{QueueDepth: 8 * len(benches)})
	defer s.Drain(context.Background())

	var ids []string
	for _, bench := range benches {
		for _, req := range goldenRequests(bench) {
			st, err := s.Submit(req)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, req.System, err)
			}
			ids = append(ids, st.ID)
		}
	}
	for _, id := range ids {
		st, err := s.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(st.System+"/"+st.Bench, func(t *testing.T) {
			if st.State != StateDone {
				t.Fatalf("job finished as %s: %s", st.State, st.Error)
			}
			res, _, err := s.Result(id)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(goldenFile(st))
			if err != nil {
				t.Fatalf("no committed golden for served cell: %v", err)
			}
			var want goldenCell
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatalf("corrupt golden file: %v", err)
			}
			if res.Refs != want.Refs {
				t.Errorf("Refs drifted: got %d, want %d", res.Refs, want.Refs)
			}
			for _, d := range stats.DiffCounters(res.Counters, want.Stats) {
				t.Error(d.String())
			}
		})
	}
}
