package serve

// Scheduler-level crash-recovery behavior: ledger replay restoring
// results and re-enqueueing unfinished work, the recovered/health gate,
// the watchdog, the Retry-After estimate, and the terminal-delivery and
// cancel-vs-completion regressions. The full-binary SIGKILL torture
// suite lives in cmd/dsmserved.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dsmnc"
	"dsmnc/telemetry"
)

// idFor computes the idempotent job ID a request gets under s's config,
// exactly the way Submit derives it.
func idFor(t *testing.T, s *Scheduler, r Request) (id, fingerprint string) {
	t.Helper()
	r = r.normalized()
	_, _, opt, err := r.compile(s.cfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	opt.CellTimeout = s.timeoutFor(r)
	return jobID(r, opt), opt.Fingerprint()
}

func TestSchedulerRecovery(t *testing.T) {
	before := runtime.NumGoroutine()
	path := ledgerPath(t)

	// Life 1: one job runs to completion, its result durably journaled.
	l1, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	fr1 := newFakeRunner(nil, 0)
	s1, err := New(Config{Workers: 1, Ledger: l1, runFn: fr1.run})
	if err != nil {
		t.Fatal(err)
	}
	st0, err := s1.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if st, err := s1.Wait(ctx, st0.ID); err != nil || st.State != StateDone {
		t.Fatalf("life 1 job: %v / %v", st, err)
	}
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Crash residue: three more jobs were acknowledged (one had even
	// started) but never finished. Written through a raw ledger handle,
	// the way a SIGKILL'd scheduler would have left them.
	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	var unfinished []string
	for n := 1; n <= 3; n++ {
		id, fp := idFor(t, s1, req(n))
		if err := l2.accepted(id, req(n).normalized(), fp, time.Now()); err != nil {
			t.Fatal(err)
		}
		unfinished = append(unfinished, id)
	}
	if err := l2.started(unfinished[0], time.Now()); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	// Life 2: recovery restores the finished job's result and re-runs
	// the unfinished three under their existing IDs. One worker behind a
	// one-deep queue against a three-job backlog keeps Recovered() false
	// until the gate opens — the /healthz 503 window.
	l3, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	fr2 := newFakeRunner(gate, 0)
	s2, err := New(Config{Workers: 1, QueueDepth: 1, Ledger: l3, runFn: fr2.run})
	if err != nil {
		t.Fatal(err)
	}
	if restored, replayed := s2.RecoveryStats(); restored != 1 || replayed != 3 {
		t.Fatalf("RecoveryStats = %d restored, %d replayed; want 1, 3", restored, replayed)
	}
	if s2.Recovered() {
		t.Fatal("Recovered() true while the replay backlog is still gated")
	}
	res, st, err := s2.Result(st0.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("restored job: %v / %v", st, err)
	}
	if res.Refs != 1 || res.Bench != "FFT" {
		t.Fatalf("restored result %+v lost its fields", res)
	}
	// A client retry of the finished job coalesces onto the restored
	// entry without re-running anything.
	if st, err := s2.Submit(req(0)); err != nil || st.State != StateDone {
		t.Fatalf("retry of restored job: %v / %v", st, err)
	}
	fr2.mu.Lock()
	rerun := fr2.runs[st0.ID]
	fr2.mu.Unlock()
	if rerun != 0 {
		t.Fatalf("restored job re-ran %d times; its ledgered result should have answered", rerun)
	}

	close(gate)
	for _, id := range unfinished {
		if st, err := s2.Wait(ctx, id); err != nil || st.State != StateDone {
			t.Fatalf("replayed job %s: %v / %v", id, st, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !s2.Recovered() {
		if time.Now().After(deadline) {
			t.Fatal("Recovered() never turned true after the backlog drained")
		}
		time.Sleep(time.Millisecond)
	}
	if total, maxPer := fr2.totalRuns(); total != 3 || maxPer != 1 {
		t.Fatalf("replay ran %d jobs (max %d per job); want each of 3 exactly once", total, maxPer)
	}
	if err := s2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}

func TestRecoveryRejectsForeignID(t *testing.T) {
	path := ledgerPath(t)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	// An accepted record whose ID cannot be derived from its request
	// under this server's options — the options changed between boots.
	const foreign = "00000000deadbeef"
	if err := l.accepted(foreign, req(1).normalized(), "stale", time.Now()); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, Ledger: l2, runFn: newFakeRunner(nil, 0).run})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Status(foreign)
	if err != nil || st.State != StateFailed {
		t.Fatalf("foreign job: %v / %v; want a failed status", st, err)
	}
	if !strings.Contains(st.Error, "different options") {
		t.Fatalf("foreign job error %q does not explain the mismatch", st.Error)
	}
	if restored, replayed := s.RecoveryStats(); restored != 0 || replayed != 0 {
		t.Fatalf("RecoveryStats = %d, %d; a rejected job is neither restored nor replayed", restored, replayed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerCompaction proves the ledger's size is bounded by the
// live-job set, not by history, and that a compacted ledger still
// recovers everything it should.
func TestSchedulerCompaction(t *testing.T) {
	path := ledgerPath(t)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 2, KeepResults: 4, CompactEvery: 4, Ledger: l, runFn: newFakeRunner(nil, 0).run})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var last string
	for n := 0; n < 32; n++ {
		st, err := s.Submit(req(n))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		last = st.ID
	}
	// 32 finished jobs would be 96 append records; compaction every 4
	// terminals must keep the file near the 4-job KeepResults bound
	// (at most 3 records per live job plus one un-compacted stride).
	if got := l.Records(); got > 3*4+3*4 {
		t.Fatalf("ledger holds %d records after 32 jobs; compaction is not bounding it", got)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Workers: 1, KeepResults: 4, Ledger: l2, runFn: newFakeRunner(nil, 0).run})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := s2.Status(last); err != nil || st.State != StateDone {
		t.Fatalf("last job after compacted recovery: %v / %v", st, err)
	}
	restored, _ := s2.RecoveryStats()
	if restored == 0 || restored > 4 {
		t.Fatalf("restored %d jobs from the compacted ledger; want 1..4", restored)
	}
	if err := s2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitFailsWhenLedgerBroken(t *testing.T) {
	l, err := OpenLedger(ledgerPath(t))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, Ledger: l, runFn: newFakeRunner(nil, 0).run})
	if err != nil {
		t.Fatal(err)
	}
	l.Close() // every append now fails: durability is gone

	id, _ := idFor(t, s, req(0))
	if _, err := s.Submit(req(0)); err == nil {
		t.Fatal("Submit succeeded though the accepted record could not be written")
	}
	// No ghost: the unacknowledged job is not registered anywhere.
	if _, err := s.Status(id); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Status after failed submit = %v, want ErrUnknownJob", err)
	}
	if s.ledgerErrs.Load() == 0 {
		t.Fatal("ledger failure was not counted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogKillsWedgedJob(t *testing.T) {
	before := runtime.NumGoroutine()
	wedge := make(chan struct{})
	returned := make(chan struct{})
	s, err := New(Config{
		Workers: 1, WatchdogFactor: 2, WatchdogTick: 2 * time.Millisecond,
		runFn: func(ctx context.Context, j *job) (dsmnc.Result, error) {
			// A wedged engine: ignores its context entirely.
			defer close(returned)
			<-wedge
			return dsmnc.Result{Refs: 999}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := req(0)
	r.TimeoutMS = 10
	st, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || !strings.Contains(final.Error, "watchdog") {
		t.Fatalf("wedged job settled as %s %q; want watchdog failure", final.State, final.Error)
	}
	if got := s.watchdogKills.Load(); got != 1 {
		t.Fatalf("watchdogKills = %d, want 1", got)
	}
	// The engine finally returns; its late result must be discarded, not
	// resurrect the job.
	close(wedge)
	<-returned
	if st, err := s.Status(final.ID); err != nil || st.State != StateFailed {
		t.Fatalf("late return flipped the job to %v (%v)", st, err)
	}
	if s.completed.Load() != 0 {
		t.Fatal("late return counted as a completion")
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestWatchTerminalDelivers is the regression the streaming endpoint
// depends on: Watch on an already-terminal job must still deliver the
// final status once, then close.
func TestWatchTerminalDelivers(t *testing.T) {
	s := mustTestScheduler(t, 1)
	st, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	ch, err := s.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := <-ch
	if !ok || got.State != StateDone {
		t.Fatalf("Watch on terminal job delivered %v (ok=%t); want the done status", got, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("Watch channel did not close after the terminal status")
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// mustTestScheduler builds a scheduler with an instant fake runner.
func mustTestScheduler(t *testing.T, workers int) *Scheduler {
	t.Helper()
	s, err := New(Config{Workers: workers, runFn: newFakeRunner(nil, 0).run})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCancelCompletionRace drills the Cancel-vs-completion window under
// the race detector: every job must settle exactly once, as done or
// canceled, never failed, never twice.
func TestCancelCompletionRace(t *testing.T) {
	s, err := New(Config{Workers: 4, KeepResults: 1 << 12, runFn: newFakeRunner(nil, 50*time.Microsecond).run})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		st, err := s.Submit(req(i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if _, err := s.Cancel(id); err != nil && !errors.Is(err, ErrUnknownJob) {
				t.Errorf("Cancel(%s): %v", id, err)
			}
		}(st.ID)
		if final, err := s.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		} else if final.State != StateDone && final.State != StateCanceled {
			t.Fatalf("job %s settled as %s (%s); want done or canceled", st.ID, final.State, final.Error)
		}
	}
	wg.Wait()
	if done, canc := s.completed.Load(), s.canceled.Load(); done+canc != n {
		t.Fatalf("done %d + canceled %d != %d submitted", done, canc, n)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRetryAfterEstimate(t *testing.T) {
	cases := []struct {
		depth, workers int
		mean           float64
		want           time.Duration
	}{
		{0, 4, 10, time.Second},        // empty queue: the floor answers
		{10, 2, 1.0, 5 * time.Second},  // 10 jobs ÷ 2 workers × 1s
		{3, 4, 0.1, time.Second},       // sub-second estimate rounds up to the floor
		{7, 2, 1.0, 4 * time.Second},   // ceil(3.5)
		{100, 1, 60, 60 * time.Second}, // clamped at a minute
		{5, 0, 1.0, 5 * time.Second},   // zero workers treated as one
		{4, 4, 0, time.Second},         // nothing observed yet: floor
	}
	for _, c := range cases {
		if got := retryAfter(c.depth, c.workers, c.mean); got != c.want {
			t.Errorf("retryAfter(%d, %d, %g) = %v, want %v", c.depth, c.workers, c.mean, got, c.want)
		}
	}

	// Integration: a fresh scheduler's estimate is the 1s floor, and it
	// grows once the histogram has observed real run latency.
	s := mustTestScheduler(t, 1)
	if got := s.RetryAfter(); got != time.Second {
		t.Errorf("fresh RetryAfter = %v, want 1s", got)
	}
	s.runHist.Observe(30)
	for i := 0; i < 8; i++ {
		s.queue <- &job{state: StateCanceled} // depth without work: pre-canceled entries drain instantly
	}
	if got := s.RetryAfter(); got < 2*time.Second {
		t.Errorf("loaded RetryAfter = %v; want an estimate above the floor", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterFleetCapacity is the regression for the remote-capacity
// bug: the estimate used to divide by the dispatch pool size alone,
// promising fast drains a small fleet cannot deliver. Capacity is now
// min(pool, fleet-wide worker slots) once remote executors have
// reported their probes.
func TestRetryAfterFleetCapacity(t *testing.T) {
	// loadFleet builds a coordinator over gated worker nodes, submits
	// jobs until `pool` are in flight and `depth` are waiting, and
	// returns the scheduler with the queue pinned at that depth.
	loadFleet := func(pool, nodes, slots, depth int) (*Scheduler, chan struct{}) {
		gate := make(chan struct{})
		blocked := func(ctx context.Context, wt *workerTask) (dsmnc.Result, error) {
			select {
			case <-gate:
				return dsmnc.Result{Refs: 1}, nil
			case <-ctx.Done():
				return dsmnc.Result{}, ctx.Err()
			}
		}
		var execs []Executor
		for n := 0; n < nodes; n++ {
			w, err := NewWorker(WorkerConfig{Slots: slots, QueueDepth: pool, runFn: blocked})
			if err != nil {
				t.Fatal(err)
			}
			e := NewRemoteExecutor(fmt.Sprintf("node-%d", n), &workerClient{w: w})
			if _, err := e.Probe(context.Background()); err != nil {
				t.Fatal(err)
			}
			execs = append(execs, e)
		}
		s, err := New(Config{Workers: pool, Executors: execs, LeaseTTL: 200 * time.Millisecond,
			runFn: func(ctx context.Context, j *job) (dsmnc.Result, error) { return dsmnc.Result{}, nil }})
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < pool+depth; n++ {
			if _, err := s.Submit(req(n)); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			if d, _ := s.QueueDepth(); d == depth && int(s.inflight.Load()) == pool {
				return s, gate
			}
			if time.Now().After(deadline) {
				d, _ := s.QueueDepth()
				t.Fatalf("queue never settled: depth %d (want %d), inflight %d (want %d)",
					d, depth, s.inflight.Load(), pool)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	drain := func(s *Scheduler, gate chan struct{}) {
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// A 16-goroutine pool over two 3-slot nodes drains 6 cells at a
	// time: 12 waiting × 30s ÷ 6 slots = 60s. The old pool-only
	// division promised ceil(12 × 30 ÷ 16) = 23s.
	s, gate := loadFleet(16, 2, 3, 12)
	if got := s.fleetSlots(); got != 6 {
		t.Fatalf("fleetSlots = %d; want 2 nodes x 3 slots", got)
	}
	s.runHist.Observe(30)
	if got := s.RetryAfter(); got != 60*time.Second {
		t.Errorf("fleet RetryAfter = %v; want the slot-bound 60s estimate", got)
	}
	drain(s, gate)

	// A fleet larger than the pool is bounded by the pool: capacity is
	// the minimum of the two. 4 waiting × 10s ÷ min(2, 64) = 20s.
	s2, gate2 := loadFleet(2, 1, 64, 4)
	s2.runHist.Observe(10)
	if got := s2.RetryAfter(); got != 20*time.Second {
		t.Errorf("pool-bound RetryAfter = %v; want 20s", got)
	}
	drain(s2, gate2)
}

// TestRecoveryMetrics wires the new counters onto a registry and checks
// they render.
func TestRecoveryMetrics(t *testing.T) {
	s := mustTestScheduler(t, 1)
	reg := telemetry.NewRegistry()
	if err := s.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, name := range []string{
		"dsmnc_serve_recovered_total",
		"dsmnc_serve_replayed_total",
		"dsmnc_serve_watchdog_killed_total",
		"dsmnc_serve_ledger_errors_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics exposition is missing %s", name)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
