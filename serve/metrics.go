package serve

// The scheduler's observability surface: dsmnc_serve_* series on the
// same telemetry registry the -metrics endpoint serves, next to the
// runtime gauges and (labeled) Progress counters. Documented in
// docs/observability.md.

import (
	"dsmnc/telemetry"
)

// RegisterMetrics exposes the scheduler on a telemetry registry: queue
// depth and bound, in-flight and worker counts, submission/shed/outcome
// totals, and the queue-wait and run-latency histograms.
func (s *Scheduler) RegisterMetrics(r *telemetry.Registry) error {
	regs := []error{
		r.Gauge("dsmnc_serve_queue_depth", "Jobs waiting in the bounded FIFO queue.",
			func() float64 { return float64(len(s.queue)) }),
		r.Gauge("dsmnc_serve_queue_capacity", "Bound of the FIFO queue; submissions beyond it shed.",
			func() float64 { return float64(s.cfg.QueueDepth) }),
		r.Gauge("dsmnc_serve_inflight", "Jobs currently executing on the worker pool.",
			func() float64 { return float64(s.inflight.Load()) }),
		r.Gauge("dsmnc_serve_workers", "Size of the worker pool.",
			func() float64 { return float64(s.cfg.Workers) }),
		r.Counter("dsmnc_serve_submitted_total", "Jobs accepted into the queue.",
			func() float64 { return float64(s.submitted.Load()) }),
		r.Counter("dsmnc_serve_deduped_total", "Submissions coalesced onto an existing job by the idempotent ID.",
			func() float64 { return float64(s.deduped.Load()) }),
		r.Counter("dsmnc_serve_shed_total", "Submissions shed with ErrBusy (full queue or draining).",
			func() float64 { return float64(s.shed.Load()) }),
		r.Counter("dsmnc_serve_done_total", "Jobs that finished successfully.",
			func() float64 { return float64(s.completed.Load()) }),
		r.Counter("dsmnc_serve_failed_total", "Jobs whose final outcome was an error.",
			func() float64 { return float64(s.failed.Load()) }),
		r.Counter("dsmnc_serve_canceled_total", "Jobs canceled before finishing.",
			func() float64 { return float64(s.canceled.Load()) }),
		r.Counter("dsmnc_serve_recovered_total", "Terminal jobs restored into the result cache from the ledger at startup.",
			func() float64 { return float64(s.restoredJobs.Load()) }),
		r.Counter("dsmnc_serve_replayed_total", "Non-terminal jobs re-enqueued from the ledger at startup.",
			func() float64 { return float64(s.replayedJobs.Load()) }),
		r.Counter("dsmnc_serve_watchdog_killed_total", "Running jobs the watchdog force-failed for overrunning their deadline.",
			func() float64 { return float64(s.watchdogKills.Load()) }),
		r.Counter("dsmnc_serve_ledger_errors_total", "Ledger appends or compactions that failed (the scheduler keeps serving).",
			func() float64 { return float64(s.ledgerErrs.Load()) }),
		r.Counter("dsmnc_serve_lease_lost_total", "Attempt leases revoked (no heartbeat) or surrendered by executors.",
			func() float64 { return float64(s.leaseLost.Load()) }),
		r.Counter("dsmnc_serve_reassigned_total", "Jobs requeued onto another executor after a lease loss.",
			func() float64 { return float64(s.reassigned.Load()) }),
		r.Counter("dsmnc_serve_quarantined_total", "Circuit-breaker trips: an executor quarantined after consecutive lease losses.",
			func() float64 { return float64(s.quarantined.Load()) }),
		r.Counter("dsmnc_serve_stale_results_total", "Late or duplicate attempt outcomes discarded by the epoch guard.",
			func() float64 { return float64(s.staleResults.Load()) }),
		r.Gauge("dsmnc_serve_executors", "Executor fault domains configured.",
			func() float64 { return float64(len(s.execs)) }),
		r.Gauge("dsmnc_serve_fleet_slots", "Fleet-wide worker slot total from readiness probes; 0 when no remote executor has reported.",
			func() float64 { return float64(s.fleetSlots()) }),
		r.Gauge("dsmnc_serve_executors_quarantined", "Executor fault domains currently quarantined.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				n := 0
				for _, es := range s.execs {
					if es.quarantined {
						n++
					}
				}
				return float64(n)
			}),
		r.RegisterHistogram("dsmnc_serve_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", nil, s.waitHist),
		r.RegisterHistogram("dsmnc_serve_run_seconds",
			"Run time of jobs on the worker pool.", nil, s.runHist),
	}
	for _, err := range regs {
		if err != nil {
			return err
		}
	}
	return nil
}
